package core

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"sgtree/internal/dataset"
	"sgtree/internal/storage"
)

// execTree builds a multi-level tree large enough that every query visits
// several nodes, so mid-traversal cancellation has room to bite.
func execTree(t *testing.T) (*Tree, *dataset.Dataset) {
	t.Helper()
	d := questData(t, 800, 1)
	return buildTree(t, d, testOptions(d.Universe)), d
}

func TestQueryCancelledBeforeStart(t *testing.T) {
	tr, d := execTree(t)
	q := sigOf(t, d.Universe, d.Tx[0])
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, st, err := tr.KNNContext(ctx, q, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("KNN on cancelled ctx: err = %v", err)
	} else if st.NodesAccessed != 0 {
		t.Errorf("KNN on cancelled ctx touched %d nodes", st.NodesAccessed)
	}
	if _, st, err := tr.ContainmentContext(ctx, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("Containment on cancelled ctx: err = %v", err)
	} else if st.NodesAccessed != 0 {
		t.Errorf("Containment on cancelled ctx touched %d nodes", st.NodesAccessed)
	}
}

// TestCancelMidTraversalNN cancels an NN query from inside the traversal
// (after the third node visit) and checks that the abort is prompt: the
// executor checks the context once per node, so no further node may be
// read after the cancellation fires.
func TestCancelMidTraversalNN(t *testing.T) {
	tr, d := execTree(t)
	q := sigOf(t, d.Universe, d.Tx[3])

	want, _, err := tr.KNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 3 {
		// The promptness assertion below needs a traversal longer than the
		// cancellation point.
		t.Fatalf("tree too shallow for the test: height %d", tr.Height())
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	visits := 0
	obs := &FuncObserver{NodeVisit: func(storage.PageID, bool) {
		visits++
		if visits == 3 {
			cancel()
		}
	}}
	_, st, err := tr.KNNContext(WithObserver(ctx, obs), q, 5)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled KNN: err = %v", err)
	}
	if st.NodesAccessed != 3 {
		t.Errorf("cancelled after visit 3, but %d nodes accessed", st.NodesAccessed)
	}

	// The tree stays fully usable after the abort.
	got, _, err := tr.KNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("post-abort KNN differs: got %v want %v", got, want)
	}
}

// TestCancelMidTraversalContainment is the boolean-query counterpart of
// TestCancelMidTraversalNN.
func TestCancelMidTraversalContainment(t *testing.T) {
	tr, d := execTree(t)
	q := sigOf(t, d.Universe, d.Tx[0])

	want, _, err := tr.Containment(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("containment of an indexed transaction found nothing")
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	visits := 0
	obs := &FuncObserver{NodeVisit: func(storage.PageID, bool) {
		visits++
		if visits == 2 {
			cancel()
		}
	}}
	_, st, err := tr.ContainmentContext(WithObserver(ctx, obs), q)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled containment: err = %v", err)
	}
	if st.NodesAccessed != 2 {
		t.Errorf("cancelled after visit 2, but %d nodes accessed", st.NodesAccessed)
	}

	got, _, err := tr.Containment(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("post-abort containment differs: got %v want %v", got, want)
	}
}

func TestDeadlineExceededCounted(t *testing.T) {
	tr, d := execTree(t)
	q := sigOf(t, d.Universe, d.Tx[1])
	tr.ResetCounters()

	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	if _, _, err := tr.RangeSearchContext(ctx, q, 4); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: err = %v", err)
	}
	if c := tr.Counters(); c.Cancellations != 1 {
		t.Errorf("Cancellations = %d, want 1", c.Cancellations)
	}
}

// TestObserverEvents checks that the events a traversal reports are
// consistent with its QueryStats, and that OnQueryDone fires exactly once,
// after every OnResult.
func TestObserverEvents(t *testing.T) {
	tr, d := execTree(t)
	q := sigOf(t, d.Universe, d.Tx[5])

	var visits, prunes, results, done int
	var doneStats QueryStats
	var doneErr error
	resultAfterDone := false
	tr.SetObserver(&FuncObserver{
		NodeVisit: func(storage.PageID, bool) { visits++ },
		Prune:     func(storage.PageID, float64) { prunes++ },
		Result: func(dataset.TID, float64) {
			results++
			if done > 0 {
				resultAfterDone = true
			}
		},
		QueryDone: func(st QueryStats, err error) {
			done++
			doneStats, doneErr = st, err
		},
	})
	defer tr.SetObserver(nil)

	res, st, err := tr.KNN(q, 7)
	if err != nil {
		t.Fatal(err)
	}
	if visits != st.NodesAccessed {
		t.Errorf("OnNodeVisit fired %d times, stats say %d", visits, st.NodesAccessed)
	}
	if prunes != st.EntriesPruned {
		t.Errorf("OnPrune fired %d times, stats say %d", prunes, st.EntriesPruned)
	}
	if results != len(res) {
		t.Errorf("OnResult fired %d times for %d results", results, len(res))
	}
	if done != 1 {
		t.Errorf("OnQueryDone fired %d times", done)
	}
	if doneErr != nil || doneStats != st {
		t.Errorf("OnQueryDone got (%+v, %v), want (%+v, nil)", doneStats, doneErr, st)
	}
	if resultAfterDone {
		t.Error("OnResult fired after OnQueryDone")
	}
}

// TestObserverTreeAndQuery verifies both hook scopes receive every event
// when a per-query observer is layered on a tree-level one.
func TestObserverTreeAndQuery(t *testing.T) {
	tr, d := execTree(t)
	q := sigOf(t, d.Universe, d.Tx[9])

	treeVisits, queryVisits := 0, 0
	tr.SetObserver(&FuncObserver{NodeVisit: func(storage.PageID, bool) { treeVisits++ }})
	defer tr.SetObserver(nil)
	ctx := WithObserver(context.Background(), &FuncObserver{NodeVisit: func(storage.PageID, bool) { queryVisits++ }})

	_, st, err := tr.RangeSearchContext(ctx, q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if treeVisits != st.NodesAccessed || queryVisits != st.NodesAccessed {
		t.Errorf("tree observer saw %d visits, query observer %d, stats %d",
			treeVisits, queryVisits, st.NodesAccessed)
	}
}

func TestTreeCounters(t *testing.T) {
	tr, d := execTree(t)
	q := sigOf(t, d.Universe, d.Tx[2])
	tr.ResetCounters()

	_, st1, err := tr.KNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	_, st2, err := tr.Containment(q)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := tr.KNNContext(ctx, q, 5); !errors.Is(err, context.Canceled) {
		t.Fatal(err)
	}

	c := tr.Counters()
	if c.Queries != 3 {
		t.Errorf("Queries = %d, want 3", c.Queries)
	}
	if c.Cancellations != 1 {
		t.Errorf("Cancellations = %d, want 1", c.Cancellations)
	}
	if want := int64(st1.NodesAccessed + st2.NodesAccessed); c.NodesRead != want {
		t.Errorf("NodesRead = %d, want %d", c.NodesRead, want)
	}
	if want := int64(st1.EntriesPruned + st2.EntriesPruned); c.EntriesPruned != want {
		t.Errorf("EntriesPruned = %d, want %d", c.EntriesPruned, want)
	}
	if want := int64(st1.DataCompared + st2.DataCompared); c.DataCompared != want {
		t.Errorf("DataCompared = %d, want %d", c.DataCompared, want)
	}

	tr.ResetCounters()
	if c := tr.Counters(); c != (Counters{}) {
		t.Errorf("counters after reset: %+v", c)
	}
}

// TestIteratorCancelResume aborts the first NextContext call and checks the
// browsing frontier survives: the same iterator then yields the exact
// sequence a fresh iterator produces.
func TestIteratorCancelResume(t *testing.T) {
	tr, d := execTree(t)
	q := sigOf(t, d.Universe, d.Tx[7])

	fresh, err := tr.NewNNIterator(q)
	if err != nil {
		t.Fatal(err)
	}
	var want []Neighbor
	for i := 0; i < 20; i++ {
		nb, ok, err := fresh.Next()
		if err != nil || !ok {
			t.Fatalf("fresh iterator: %v %v", ok, err)
		}
		want = append(want, nb)
	}

	it, err := tr.NewNNIterator(q)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := it.NextContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled NextContext: err = %v", err)
	}
	var got []Neighbor
	for i := 0; i < 20; i++ {
		nb, ok, err := it.Next()
		if err != nil || !ok {
			t.Fatalf("resumed iterator: %v %v", ok, err)
		}
		got = append(got, nb)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resumed iterator diverged:\ngot  %v\nwant %v", got, want)
	}
}
