package core

import (
	"fmt"

	"sgtree/internal/dataset"
	"sgtree/internal/signature"
	"sgtree/internal/storage"
)

// This file implements the clustering direction of the paper's Section 6:
// "we can investigate whether the SG-tree can be used for clustering large
// dynamic collections of set and categorical data ... e.g. by merging the
// leaf nodes using their signatures as guides". The insertion heuristics
// already co-locate similar transactions in leaves, so agglomerating the
// leaf covers — a structure typically 1-2 orders of magnitude smaller than
// the data — produces a clustering in O(L²) for L leaves instead of the
// Ω(n²) of the categorical clustering algorithms the paper cites.

// Cluster is one group of transactions produced by ClusterLeaves: the
// member ids and the cover signature of the whole group.
type Cluster struct {
	Members []dataset.TID
	Cover   signature.Signature
}

// ClusterLeaves partitions the indexed collection into k clusters by
// hierarchically merging leaf nodes with group-average linkage over the
// Jaccard distances between the *leaf* covers (Lance–Williams update).
// Group-average on the original leaf covers resists the saturation that a
// merged-cover distance suffers on large noisy collections, where every big
// cluster's OR-cover converges to the full universe and all inter-cluster
// distances collapse. k is clamped to the number of leaves.
func (t *Tree) ClusterLeaves(k int) ([]Cluster, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: k = %d < 1", k)
	}
	snap := t.pinSnapshot()
	defer snap.release()
	if snap.root == storage.InvalidPage {
		return nil, nil
	}
	var clusters []Cluster
	if err := t.collectLeafClusters(snap.root, &clusters); err != nil {
		return nil, err
	}
	if k > len(clusters) {
		k = len(clusters)
	}
	n := len(clusters)
	// Pairwise group-average distances, initialized from the leaf covers.
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := 1 - clusters[i].Cover.Jaccard(clusters[j].Cover)
			dist[i][j], dist[j][i] = d, d
		}
	}
	alive := make([]bool, n)
	weight := make([]int, n) // number of original leaves merged in
	for i := range alive {
		alive[i] = true
		weight[i] = 1
	}
	liveCount := n
	for liveCount > k {
		bi, bj := -1, -1
		best := 0.0
		for i := 0; i < n; i++ {
			if !alive[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !alive[j] {
					continue
				}
				if bi == -1 || dist[i][j] < best {
					best, bi, bj = dist[i][j], i, j
				}
			}
		}
		// Lance–Williams group-average update, then merge bj into bi.
		wi, wj := float64(weight[bi]), float64(weight[bj])
		for m := 0; m < n; m++ {
			if !alive[m] || m == bi || m == bj {
				continue
			}
			d := (wi*dist[m][bi] + wj*dist[m][bj]) / (wi + wj)
			dist[m][bi], dist[bi][m] = d, d
		}
		clusters[bi].Members = append(clusters[bi].Members, clusters[bj].Members...)
		clusters[bi].Cover.Merge(clusters[bj].Cover)
		weight[bi] += weight[bj]
		alive[bj] = false
		liveCount--
	}
	out := make([]Cluster, 0, k)
	for i := 0; i < n; i++ {
		if alive[i] {
			out = append(out, clusters[i])
		}
	}
	return out, nil
}

func (t *Tree) collectLeafClusters(id storage.PageID, out *[]Cluster) error {
	// Read-only traversal: covers are merged into a fresh signature, so the
	// shared cached decode is safe.
	n, err := t.readNodeCached(id)
	if err != nil {
		return err
	}
	if n.leaf {
		c := Cluster{Cover: signature.New(t.opts.SignatureLength)}
		for i := range n.entries {
			c.Members = append(c.Members, n.entries[i].tid)
			c.Cover.Merge(n.entries[i].sig)
		}
		*out = append(*out, c)
		return nil
	}
	for i := range n.entries {
		if err := t.collectLeafClusters(n.entries[i].child, out); err != nil {
			return err
		}
	}
	return nil
}
