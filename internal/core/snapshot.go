package core

import (
	"sync/atomic"

	"sgtree/internal/storage"
)

// treeSnapshot is one immutable published version of the tree. Writers
// build each update out of fresh pages (copy-on-write, see writeNode) and
// publish the new root/height/count here atomically at the end of
// runUpdate, so readers pin a snapshot instead of locking the tree: every
// page reachable from a pinned snapshot's root stays byte-identical until
// the last pin is released and the snapshot's deferred frees are
// reclaimed.
//
// root/height/count/epoch are immutable after publication. pins is the
// reader reference count. frees and next are written only under Tree.mu,
// after the snapshot has been superseded (retired): frees holds the pages
// the *next* epoch's update replaced or deleted — they are exactly the
// pages reachable from this snapshot but not from any later one — and
// next chains retired snapshots oldest-first for reclaimSnapshots.
type treeSnapshot struct {
	root   storage.PageID
	height int
	count  int
	epoch  uint64

	pins  atomic.Int64
	frees []storage.PageID // guarded by Tree.mu; set at retirement
	next  *treeSnapshot    // guarded by Tree.mu; retire-chain link
}

// pinSnapshot acquires a read reference on the current snapshot without
// taking Tree.mu. The recheck closes the race with a concurrent publish:
// if snap still points at s after the pin landed, the increment
// happens-before any writer's later pins.Load in reclaimSnapshots, so the
// writer cannot free pages s can reach. If snap moved, the pin may have
// landed on an already-retired snapshot whose pages are being reclaimed —
// drop it and retry on the fresh snapshot. Snapshots are fresh
// allocations, so the pointer comparison cannot be confused by reuse.
func (t *Tree) pinSnapshot() *treeSnapshot {
	for {
		s := t.snap.Load()
		s.pins.Add(1)
		if t.snap.Load() == s {
			return s
		}
		s.pins.Add(-1)
	}
}

// release drops a pin taken by pinSnapshot.
func (s *treeSnapshot) release() {
	s.pins.Add(-1)
}

// publishSnapshot installs the tree's current root/height/count as the
// next epoch and retires the previous snapshot, attaching the update's
// deferred frees to it. Called under Tree.mu at the end of a successful
// runUpdate.
func (t *Tree) publishSnapshot() {
	prev := t.snap.Load()
	next := &treeSnapshot{root: t.root, height: t.height, count: t.count, epoch: prev.epoch + 1}
	prev.frees = t.cowFrees
	t.cowFrees = nil
	t.cowFresh = nil
	t.snap.Store(next)
	if t.retireTail != nil {
		t.retireTail.next = prev
	} else {
		t.retireHead = prev
	}
	t.retireTail = prev
}

// reclaimSnapshots drains the retire chain oldest-first, discarding each
// retired snapshot's deferred frees once no reader pins it. It must stop
// at the first still-pinned snapshot: a reader pinned at epoch N may
// reach pages that only a later epoch's frees list names, so younger
// retirees cannot be reclaimed out of order. Cached decodes are
// invalidated before the page id returns to the free list, so a recycled
// id can never serve a stale node. frees is consumed incrementally so a
// Discard error cannot double-free on the next attempt. Called under
// Tree.mu (start of runUpdate, Sync/Close, DropCaches).
func (t *Tree) reclaimSnapshots() error {
	for t.retireHead != nil {
		s := t.retireHead
		if s.pins.Load() != 0 {
			return nil
		}
		for len(s.frees) > 0 {
			id := s.frees[0]
			if t.ncache != nil {
				t.ncache.invalidate(id)
			}
			if err := t.pool.Discard(id); err != nil {
				return err
			}
			s.frees = s.frees[1:]
		}
		t.retireHead = s.next
		if t.retireHead == nil {
			t.retireTail = nil
		}
	}
	return nil
}
