package core

import (
	"math/rand"
	"testing"

	"sgtree/internal/dataset"
	"sgtree/internal/signature"
	"sgtree/internal/storage"
)

// variableCardData produces sets whose sizes vary wildly (2 to ~40 items),
// the regime where cardinality statistics pay off.
func variableCardData(t *testing.T, n int, seed int64) *dataset.Dataset {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	d := dataset.New(300)
	for i := 0; i < n; i++ {
		base := r.Intn(10) * 30
		var sz int
		if r.Intn(2) == 0 {
			sz = 2 + r.Intn(4) // small sets
		} else {
			sz = 20 + r.Intn(20) // large sets
		}
		items := make([]int, 0, sz)
		for len(items) < sz {
			items = append(items, base+r.Intn(30))
		}
		d.Add(items...)
	}
	return d
}

func cardStatsOptions() Options {
	o := testOptions(300)
	o.CardStats = true
	return o
}

func TestCardStatsInvariantsAndCorrectness(t *testing.T) {
	d := variableCardData(t, 800, 3)
	tr := buildTree(t, d, cardStatsOptions())
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// KNN answers match the oracle exactly.
	for _, qi := range []int{0, 99, 500} {
		q := d.Tx[qi]
		got, _, err := tr.KNN(sigOf(t, 300, q), 7)
		if err != nil {
			t.Fatal(err)
		}
		want := linearKNN(d, q, 7)
		for i := range got {
			if got[i].Dist != want[i] {
				t.Fatalf("query %d rank %d: %v vs %v", qi, i, got[i].Dist, want[i])
			}
		}
	}
	// Range queries too.
	q := d.Tx[42]
	got, _, err := tr.RangeSearch(sigOf(t, 300, q), 6)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, tx := range d.Tx {
		if float64(q.Hamming(tx)) <= 6 {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("range: %d vs %d", len(got), want)
	}
}

func TestCardStatsImprovePruning(t *testing.T) {
	d := variableCardData(t, 2000, 7)
	plain := buildTree(t, d, testOptions(300))
	stats := buildTree(t, d, cardStatsOptions())
	r := rand.New(rand.NewSource(11))
	plainWork, statsWork := 0, 0
	for i := 0; i < 40; i++ {
		q := sigOf(t, 300, d.Tx[r.Intn(d.Len())])
		_, s1, err := plain.KNN(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		_, s2, err := stats.KNN(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		plainWork += s1.DataCompared
		statsWork += s2.DataCompared
	}
	t.Logf("data compared: plain %d, card-stats %d", plainWork, statsWork)
	if statsWork > plainWork {
		t.Errorf("cardinality stats made pruning worse: %d vs %d", statsWork, plainWork)
	}
}

func TestCardStatsSurviveDeletesAndReinserts(t *testing.T) {
	d := variableCardData(t, 600, 13)
	tr := buildTree(t, d, cardStatsOptions())
	m := signature.NewDirectMapper(300)
	r := rand.New(rand.NewSource(5))
	perm := r.Perm(d.Len())
	for i := 0; i < 400; i++ {
		id := perm[i]
		found, err := tr.Delete(signature.FromItems(m, d.Tx[id]), dataset.TID(id))
		if err != nil || !found {
			t.Fatalf("delete %d: %v %v", id, found, err)
		}
		if i%80 == 79 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d deletes: %v", i+1, err)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCardStatsBulkLoad(t *testing.T) {
	d := variableCardData(t, 700, 17)
	tr := mustTree(t, cardStatsOptions())
	if err := tr.BulkLoad(bulkItems(t, d)); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	q := d.Tx[100]
	got, _, err := tr.KNN(sigOf(t, 300, q), 3)
	if err != nil {
		t.Fatal(err)
	}
	want := linearKNN(d, q, 3)
	for i := range got {
		if got[i].Dist != want[i] {
			t.Fatalf("rank %d: %v vs %v", i, got[i].Dist, want[i])
		}
	}
}

func TestCardStatsPersistence(t *testing.T) {
	opts := cardStatsOptions()
	p := storage.NewMemPager(opts.PageSize)
	tr, err := NewWithPager(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	d := variableCardData(t, 300, 19)
	m := signature.NewDirectMapper(300)
	for i, tx := range d.Tx {
		if err := tr.Insert(signature.FromItems(m, tx), dataset.TID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen with matching options: stats intact.
	re, err := Open(p, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := re.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Reopen with mismatched flag: rejected.
	noStats := opts
	noStats.CardStats = false
	if _, err := Open(p, 1, noStats); err == nil {
		t.Error("CardStats flag mismatch accepted")
	}
}

func TestCardStatsJaccardMetric(t *testing.T) {
	d := variableCardData(t, 500, 23)
	opts := cardStatsOptions()
	opts.Metric = signature.Jaccard
	tr := buildTree(t, d, opts)
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	q := d.Tx[10]
	qsig := sigOf(t, 300, q)
	got, _, err := tr.KNN(qsig, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Oracle.
	dists := make([]float64, d.Len())
	for i, tx := range d.Tx {
		dists[i] = 1 - q.Jaccard(tx)
	}
	for i := 0; i < 5; i++ {
		min := i
		for j := i; j < len(dists); j++ {
			if dists[j] < dists[min] {
				min = j
			}
		}
		dists[i], dists[min] = dists[min], dists[i]
		if diff := got[i].Dist - dists[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("rank %d: %v vs %v", i, got[i].Dist, dists[i])
		}
	}
}

func TestCardStatsRejectsHugeSignatures(t *testing.T) {
	o := Options{SignatureLength: 70000, PageSize: 65536, CardStats: true}
	if err := o.Validate(); err == nil {
		t.Error("signature length beyond uint16 accepted with CardStats")
	}
}
