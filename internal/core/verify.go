package core

import (
	"fmt"

	"sgtree/internal/storage"
)

// CheckInvariants walks the entire tree and verifies its structural
// invariants. It exists for tests and for the sgtool doctor command; a
// healthy tree always passes:
//
//  1. every directory entry's signature is exactly the OR of the child's
//     entry signatures (Definition 5), which implies the coverage property
//     the search bounds rely on;
//  2. all leaves are at level 0 and all root-to-leaf paths have the same
//     length (height balance);
//  3. node levels decrease by exactly one along every edge;
//  4. every node fits its page and respects MaxNodeEntries;
//  5. the recorded count matches the number of leaf entries;
//  6. no node other than the root has fewer than two entries.
func (t *Tree) CheckInvariants() error {
	snap := t.pinSnapshot()
	defer snap.release()
	if snap.root == storage.InvalidPage {
		if snap.height != 0 || snap.count != 0 {
			return fmt.Errorf("core: empty tree with height %d count %d", snap.height, snap.count)
		}
		return nil
	}
	rootNode, err := t.readNode(snap.root)
	if err != nil {
		return err
	}
	if rootNode.level != snap.height-1 {
		return fmt.Errorf("core: root level %d != height-1 (%d)", rootNode.level, snap.height-1)
	}
	leafEntries := 0
	if err := t.checkNode(rootNode, true, &leafEntries); err != nil {
		return err
	}
	if leafEntries != snap.count {
		return fmt.Errorf("core: count %d but %d leaf entries found", snap.count, leafEntries)
	}
	return nil
}

func (t *Tree) checkNode(n *node, isRoot bool, leafEntries *int) error {
	if len(n.entries) == 0 && !isRoot {
		return fmt.Errorf("core: node %d is empty", n.id)
	}
	if !isRoot && len(n.entries) < 2 {
		return fmt.Errorf("core: non-root node %d has %d entries", n.id, len(n.entries))
	}
	if len(n.entries) > t.opts.MaxNodeEntries {
		return fmt.Errorf("core: node %d has %d entries > MaxNodeEntries %d", n.id, len(n.entries), t.opts.MaxNodeEntries)
	}
	if sz := t.layout.encodedSize(n); sz > t.layout.budget() {
		return fmt.Errorf("core: node %d encodes to %d bytes > node budget %d", n.id, sz, t.layout.budget())
	}
	if n.leaf {
		if n.level != 0 {
			return fmt.Errorf("core: leaf node %d at level %d", n.id, n.level)
		}
		*leafEntries += len(n.entries)
		for i := range n.entries {
			if n.entries[i].sig.Len() != t.opts.SignatureLength {
				return fmt.Errorf("core: leaf %d entry %d has signature length %d", n.id, i, n.entries[i].sig.Len())
			}
			if fc := t.opts.FixedCardinality; fc > 0 && n.entries[i].sig.Area() != fc {
				return fmt.Errorf("core: leaf %d entry %d area %d violates fixed cardinality %d",
					n.id, i, n.entries[i].sig.Area(), fc)
			}
		}
		return nil
	}
	if n.level == 0 {
		return fmt.Errorf("core: directory node %d at level 0", n.id)
	}
	for i := range n.entries {
		child, err := t.readNode(n.entries[i].child)
		if err != nil {
			return fmt.Errorf("core: node %d entry %d: %w", n.id, i, err)
		}
		if child.level != n.level-1 {
			return fmt.Errorf("core: node %d (level %d) points to child %d at level %d",
				n.id, n.level, child.id, child.level)
		}
		cover := child.coverSignature(t.opts.SignatureLength)
		if !n.entries[i].sig.Equal(cover.Bitset) {
			return fmt.Errorf("core: node %d entry %d signature is not the exact OR of child %d (area %d vs %d)",
				n.id, i, child.id, n.entries[i].sig.Area(), cover.Area())
		}
		if t.opts.CardStats {
			lo, hi := child.cardRange()
			if n.entries[i].lo != lo || n.entries[i].hi != hi {
				return fmt.Errorf("core: node %d entry %d cardinality range [%d,%d] != child %d range [%d,%d]",
					n.id, i, n.entries[i].lo, n.entries[i].hi, child.id, lo, hi)
			}
		}
		if err := t.checkNode(child, false, leafEntries); err != nil {
			return err
		}
	}
	return nil
}
