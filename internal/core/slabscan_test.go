package core

import (
	"math"
	"math/rand"
	"testing"

	"sgtree/internal/dataset"
	"sgtree/internal/gen"
	"sgtree/internal/signature"
	"sgtree/internal/storage"
)

// Property tests for the batched slab scans (slabscan.go): on real trees,
// slabBounds/slabDistances must be bit-identical to the per-entry bound and
// distance computations, prune/accept verdicts recovered from the exact
// slab values must match the fused per-entry forms, and whole queries must
// return identical results whichever engine runs. slabScanEnabled is forced
// on for the duration so the scans are exercised (through the generic slab
// kernels) even on hardware where production would keep the per-entry path.

// slabTestConfig is one tree configuration under test; fixedCard makes the
// generated transactions all the same size so FixedCardinality trees accept
// them.
type slabTestConfig struct {
	name      string
	universe  int
	metric    signature.Metric
	cardStats bool
	fixedCard int
	compress  bool
}

// slabTestConfigs covers every slabBounds/slabDistances branch: the three
// AndCountSlab finishers (card-range, fixed-card, generic metric) and the
// direct Hamming kernels, at universes on both sides of the stride padding
// boundary (200 bits -> 4 words, stride 4, no padding; 300 bits -> 5
// words, stride 8, 3 padded words per row and a padded query).
var slabTestConfigs = []slabTestConfig{
	{name: "hamming", universe: 200, metric: signature.Hamming, compress: true},
	{name: "hamming-padded", universe: 300, metric: signature.Hamming},
	{name: "hamming-cardstats", universe: 300, metric: signature.Hamming, cardStats: true, compress: true},
	{name: "hamming-fixedcard", universe: 200, metric: signature.Hamming, fixedCard: 6},
	{name: "jaccard", universe: 300, metric: signature.Jaccard, compress: true},
	{name: "dice", universe: 200, metric: signature.Dice},
	{name: "cosine", universe: 300, metric: signature.Cosine, compress: true},
}

func (c slabTestConfig) options() Options {
	opts := testOptions(c.universe)
	opts.Metric = c.metric
	opts.CardStats = c.cardStats
	opts.FixedCardinality = c.fixedCard
	opts.Compress = c.compress
	return opts
}

// data builds the config's dataset: clustered Quest data normally, uniform
// fixed-size transactions when the tree declares a fixed cardinality.
func (c slabTestConfig) data(t *testing.T, n int, seed int64) *dataset.Dataset {
	t.Helper()
	if c.fixedCard > 0 {
		rng := rand.New(rand.NewSource(seed))
		d := dataset.New(c.universe)
		for i := 0; i < n; i++ {
			items := rng.Perm(c.universe)[:c.fixedCard]
			d.Add(items...)
		}
		return d
	}
	d, err := gen.GenerateQuest(gen.QuestConfig{
		NumTransactions: n, AvgSize: 8, AvgItemsetSize: 4,
		NumItems: c.universe, NumItemsets: 50, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// queries picks a handful of probe signatures: dataset members, a random
// outsider, the empty signature and the all-ones signature (the latter two
// stress the zero/degenerate branches of the metric finishers).
func (c slabTestConfig) queries(t *testing.T, d *dataset.Dataset, seed int64) []signature.Signature {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := signature.NewDirectMapper(d.Universe)
	qs := []signature.Signature{
		signature.FromItems(m, d.Tx[0]),
		signature.FromItems(m, d.Tx[d.Len()/2]),
		signature.FromItems(m, dataset.NewTransaction(rng.Perm(d.Universe)[:5]...)),
	}
	empty := signature.New(c.universe)
	full := signature.New(c.universe)
	for i := 0; i < c.universe; i++ {
		full.Set(i)
	}
	return append(qs, empty, full)
}

// walkNodes applies fn to every node of the subtree rooted at id, freshly
// decoded (so each node carries a slab and no area cache, exactly the state
// decodeBuf leaves behind).
func walkNodes(t *testing.T, tr *Tree, id storage.PageID, fn func(*node)) {
	t.Helper()
	n, err := tr.readNode(id)
	if err != nil {
		t.Fatal(err)
	}
	fn(n)
	if n.leaf {
		return
	}
	for i := range n.entries {
		walkNodes(t, tr, n.entries[i].child, fn)
	}
}

// slabTestThresholds exercises the verdict equivalence at and around the
// integral Hamming boundaries and at fractional values for the normalized
// metrics.
var slabTestThresholds = []float64{0, 0.25, 0.5, 0.9, 1, 2, 3.5, 8, 64, math.Inf(1)}

// TestSlabScanMatchesPerEntry is the node-level property: for every node of
// trees built under each configuration, the batched slab scan produces the
// same bounds and distances — bit-identical, not merely close — as the
// per-entry signature-package calls, and threshold verdicts recovered from
// the slab values agree with the fused per-entry forms.
func TestSlabScanMatchesPerEntry(t *testing.T) {
	defer func(v bool) { slabScanEnabled = v }(slabScanEnabled)
	slabScanEnabled = true

	for _, cfg := range slabTestConfigs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			d := cfg.data(t, 300, 1)
			tr := buildTree(t, d, cfg.options())
			defer tr.Close()
			queries := cfg.queries(t, d, 2)

			e := tr.newExec(nil)
			defer e.release()

			nodes, leaves := 0, 0
			walkNodes(t, tr, tr.root, func(n *node) {
				if !n.slabScannable() {
					t.Fatalf("freshly decoded node %d not slab-scannable", n.id)
				}
				if n.slabStride%4 != 0 || len(n.slab) < n.slabRows*n.slabStride {
					t.Fatalf("node %d: bad slab geometry stride=%d rows=%d len=%d",
						n.id, n.slabStride, n.slabRows, len(n.slab))
				}
				nodes++
				if n.leaf {
					leaves++
					checkSlabDistances(t, tr, e, n, queries)
					return
				}
				checkSlabBounds(t, tr, e, n, queries)
			})
			if nodes < 3 || leaves < 2 {
				t.Fatalf("tree too small for a meaningful check: %d nodes, %d leaves", nodes, leaves)
			}
		})
	}
}

// checkSlabBounds compares slabBounds against entryMinDist /
// entryMinDistWithin on one directory node.
func checkSlabBounds(t *testing.T, tr *Tree, e *executor, n *node, queries []signature.Signature) {
	t.Helper()
	for qi, q := range queries {
		if !e.slabBounds(n, q) {
			t.Fatalf("slabBounds refused scannable node %d", n.id)
		}
		got := append([]float64(nil), e.bounds[:len(n.entries)]...)
		for i := range n.entries {
			want := tr.entryMinDist(q, &n.entries[i])
			if got[i] != want {
				t.Fatalf("node %d query %d entry %d: slab bound %v, per-entry %v",
					n.id, qi, i, got[i], want)
			}
			for _, thr := range slabTestThresholds {
				for _, strict := range []bool{true, false} {
					d, prunable := tr.entryMinDistWithin(q, &n.entries[i], thr, strict)
					if slabPrun := distFails(got[i], thr, strict); slabPrun != prunable {
						t.Fatalf("node %d query %d entry %d thr=%v strict=%v: slab verdict %v, fused %v",
							n.id, qi, i, thr, strict, slabPrun, prunable)
					}
					// A surviving fused bound is exact and must equal the
					// slab value (a pruned one may be clamped).
					if !prunable && d != got[i] {
						t.Fatalf("node %d query %d entry %d: surviving fused bound %v != slab %v",
							n.id, qi, i, d, got[i])
					}
				}
			}
		}
	}
}

// checkSlabDistances compares slabDistances against signature.Distance /
// DistanceWithin on one leaf node, including the area-cache fallback for
// the normalized metrics.
func checkSlabDistances(t *testing.T, tr *Tree, e *executor, n *node, queries []signature.Signature) {
	t.Helper()
	m := tr.opts.Metric
	if m != signature.Hamming {
		// Without the per-entry area cache the normalized-metric finishers
		// have no |t|; the scan must decline, leaving the per-entry path.
		if n.areas != nil {
			t.Fatalf("freshly decoded node %d already has an area cache", n.id)
		}
		if e.slabDistances(n, queries[0]) {
			t.Fatalf("slabDistances ran on node %d without an area cache", n.id)
		}
		n.cacheAreas()
	}
	for qi, q := range queries {
		if !e.slabDistances(n, q) {
			t.Fatalf("slabDistances refused scannable node %d", n.id)
		}
		got := append([]float64(nil), e.bounds[:len(n.entries)]...)
		for i := range n.entries {
			want := signature.Distance(m, q, n.entries[i].sig)
			if got[i] != want {
				t.Fatalf("node %d query %d entry %d: slab distance %v, per-entry %v",
					n.id, qi, i, got[i], want)
			}
			for _, thr := range slabTestThresholds {
				for _, strict := range []bool{true, false} {
					dd, failed := signature.DistanceWithin(m, q, n.entries[i].sig, thr, strict)
					if slabFail := distFails(got[i], thr, strict); slabFail != failed {
						t.Fatalf("node %d query %d entry %d thr=%v strict=%v: slab verdict %v, fused %v",
							n.id, qi, i, thr, strict, slabFail, failed)
					}
					if !failed && dd != got[i] {
						t.Fatalf("node %d query %d entry %d: accepted fused distance %v != slab %v",
							n.id, qi, i, dd, got[i])
					}
				}
			}
		}
	}
}

// queryFingerprint runs one query through every traversal engine and
// returns the combined results for comparison across scan paths.
type queryFingerprint struct {
	knn     []Neighbor
	bf      []Neighbor
	rng     []Neighbor
	browsed []Neighbor
}

func fingerprint(t *testing.T, tr *Tree, q signature.Signature, k int, eps float64) queryFingerprint {
	t.Helper()
	var fp queryFingerprint
	var err error
	if fp.knn, _, err = tr.KNN(q, k); err != nil {
		t.Fatal(err)
	}
	if fp.bf, _, err = tr.KNNBestFirst(q, k); err != nil {
		t.Fatal(err)
	}
	if fp.rng, _, err = tr.RangeSearch(q, eps); err != nil {
		t.Fatal(err)
	}
	it, err := tr.NewNNIterator(q)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	for len(fp.browsed) < k+5 {
		nb, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		fp.browsed = append(fp.browsed, nb)
	}
	return fp
}

func neighborsEqual(a, b []Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (fp queryFingerprint) diff(other queryFingerprint) string {
	switch {
	case !neighborsEqual(fp.knn, other.knn):
		return "KNN"
	case !neighborsEqual(fp.bf, other.bf):
		return "KNNBestFirst"
	case !neighborsEqual(fp.rng, other.rng):
		return "RangeSearch"
	case !neighborsEqual(fp.browsed, other.browsed):
		return "NNIterator"
	}
	return ""
}

// TestSlabScanQueryEquivalence is the end-to-end property: on the same
// tree, every query engine returns identical neighbor sequences whether it
// runs the batched slab scans or the per-entry kernels — before and after
// deletions that invalidate node slabs along the way (exercising the
// dropSlab coherence sites).
func TestSlabScanQueryEquivalence(t *testing.T) {
	defer func(v bool) { slabScanEnabled = v }(slabScanEnabled)

	for _, cfg := range slabTestConfigs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			d := cfg.data(t, 400, 3)
			tr := buildTree(t, d, cfg.options())
			defer tr.Close()
			queries := cfg.queries(t, d, 4)
			eps := 6.0
			if cfg.metric != signature.Hamming {
				eps = 0.6
			}

			m := signature.NewDirectMapper(d.Universe)
			for phase, label := range []string{"initial", "after-deletes"} {
				if phase == 1 {
					// Delete a third of the data to exercise the slab
					// invalidation paths (entry permutation, merges,
					// forced reinserts) before re-checking equivalence.
					for i := 0; i < d.Len(); i += 3 {
						slabScanEnabled = i%2 == 0 // alternate engines during maintenance
						if _, err := tr.Delete(signature.FromItems(m, d.Tx[i]), dataset.TID(i)); err != nil {
							t.Fatal(err)
						}
					}
				}
				for qi, q := range queries {
					slabScanEnabled = false
					perEntry := fingerprint(t, tr, q, 10, eps)
					slabScanEnabled = true
					slab := fingerprint(t, tr, q, 10, eps)
					if engine := perEntry.diff(slab); engine != "" {
						t.Fatalf("%s query %d: %s results differ between per-entry and slab scans",
							label, qi, engine)
					}
				}
			}
		})
	}
}
