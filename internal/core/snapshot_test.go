package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"sgtree/internal/dataset"
	"sgtree/internal/signature"
)

// sigTable materializes tid→signature for a dataset slice, the oracle's
// view of one tree state.
func sigTable(d *dataset.Dataset, lo, hi int) map[dataset.TID]signature.Signature {
	m := signature.NewDirectMapper(d.Universe)
	out := make(map[dataset.TID]signature.Signature, hi-lo)
	for i := lo; i < hi; i++ {
		out[dataset.TID(i)] = signature.FromItems(m, d.Tx[i])
	}
	return out
}

// drainIterator consumes it to exhaustion, checking the non-decreasing
// distance contract, and returns the full tid→distance result set.
func drainIterator(t *testing.T, it *NNIterator) map[dataset.TID]float64 {
	t.Helper()
	got := map[dataset.TID]float64{}
	prev := -1.0
	for {
		n, ok, err := it.Next()
		if err != nil {
			t.Fatalf("iterator: %v", err)
		}
		if !ok {
			return got
		}
		if n.Dist < prev {
			t.Fatalf("iterator distance went backwards: %g after %g", n.Dist, prev)
		}
		prev = n.Dist
		if _, dup := got[n.TID]; dup {
			t.Fatalf("iterator yielded tid %d twice", n.TID)
		}
		got[n.TID] = n.Dist
	}
}

// checkResultSet compares a drained iterator against the oracle table:
// exactly the oracle's tids, each at its exact distance.
func checkResultSet(t *testing.T, tag string, got map[dataset.TID]float64, want map[dataset.TID]signature.Signature, q signature.Signature) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: result set has %d entries, oracle has %d", tag, len(got), len(want))
	}
	for tid, s := range want {
		d, ok := got[tid]
		if !ok {
			t.Fatalf("%s: oracle tid %d missing from results", tag, tid)
		}
		if wd := signature.Distance(signature.Hamming, q, s); d != wd {
			t.Fatalf("%s: tid %d at distance %g, oracle says %g", tag, tid, d, wd)
		}
	}
}

// TestSnapshotIsolation is the writer-vs-reader linearization check: a
// reader pinned before an Insert, Delete, or BulkLoad must see exactly the
// pre-update result set, oracle-checked, while a reader pinned after sees
// exactly the post-update set. The pinned reader is an NNIterator, which
// holds one snapshot across its whole drain — the mutation happens between
// its creation and its first Next.
func TestSnapshotIsolation(t *testing.T) {
	d := questData(t, 600, 907)
	d2 := questData(t, 200, 911)
	m := signature.NewDirectMapper(d.Universe)
	q := signature.FromItems(m, d.Tx[7])

	cases := []struct {
		name   string
		mutate func(t *testing.T, tr *Tree)
		post   func() map[dataset.TID]signature.Signature
	}{
		{
			name: "insert",
			mutate: func(t *testing.T, tr *Tree) {
				for i := 300; i < 600; i++ {
					if err := tr.Insert(signature.FromItems(m, d.Tx[i]), dataset.TID(i)); err != nil {
						t.Fatalf("insert %d: %v", i, err)
					}
				}
			},
			post: func() map[dataset.TID]signature.Signature { return sigTable(d, 0, 600) },
		},
		{
			name: "delete",
			mutate: func(t *testing.T, tr *Tree) {
				for i := 0; i < 100; i++ {
					found, err := tr.Delete(signature.FromItems(m, d.Tx[i]), dataset.TID(i))
					if err != nil {
						t.Fatalf("delete %d: %v", i, err)
					}
					if !found {
						t.Fatalf("delete %d: not found", i)
					}
				}
			},
			post: func() map[dataset.TID]signature.Signature { return sigTable(d, 100, 300) },
		},
		{
			name: "bulkload",
			mutate: func(t *testing.T, tr *Tree) {
				if err := tr.BulkLoad(bulkItems(t, d2)); err != nil {
					t.Fatalf("bulkload: %v", err)
				}
			},
			post: func() map[dataset.TID]signature.Signature { return sigTable(d2, 0, 200) },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := buildTree(t, d.Slice(0, 300), testOptions(200))
			pre := sigTable(d, 0, 300)

			it, err := tr.NewNNIterator(q)
			if err != nil {
				t.Fatal(err)
			}
			tc.mutate(t, tr)

			// The pinned reader sees exactly the pre-update world...
			checkResultSet(t, "pinned reader", drainIterator(t, it), pre, q)

			// ...and a reader pinned now sees exactly the post-update one.
			it2, err := tr.NewNNIterator(q)
			if err != nil {
				t.Fatal(err)
			}
			checkResultSet(t, "fresh reader", drainIterator(t, it2), tc.post(), q)

			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestIteratorDoesNotBlockWriter is the regression test for the old
// lock-hold-across-yield hazard: an open NNIterator must neither block a
// concurrent writer nor be broken by one. Before the snapshot refactor the
// iterator re-acquired the tree's read lock on every step; a slow consumer
// could starve writers, and a writer slipping in between steps could split
// nodes out from under the frontier.
func TestIteratorDoesNotBlockWriter(t *testing.T) {
	d := questData(t, 500, 131)
	m := signature.NewDirectMapper(d.Universe)
	tr := buildTree(t, d.Slice(0, 400), testOptions(200))
	q := signature.FromItems(m, d.Tx[3])

	it, err := tr.NewNNIterator(q)
	if err != nil {
		t.Fatal(err)
	}
	// Consume a few steps so the iterator is mid-traversal, then leave it
	// open — the writer below must still complete promptly.
	for i := 0; i < 5; i++ {
		if _, ok, err := it.Next(); err != nil || !ok {
			t.Fatalf("step %d: ok=%v err=%v", i, ok, err)
		}
	}

	done := make(chan error, 1)
	go func() {
		for i := 400; i < 500; i++ {
			if err := tr.Insert(signature.FromItems(m, d.Tx[i]), dataset.TID(i)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("concurrent insert: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("writer blocked behind an open iterator")
	}

	// The iterator keeps browsing its pinned epoch: the remaining drain
	// still covers exactly the pre-update result set.
	got := drainIterator(t, it)
	if len(got) != 400-5 {
		t.Fatalf("drained %d entries after 5 consumed, want %d", len(got), 400-5)
	}
	// And a fresh reader sees the writer's world.
	it2, err := tr.NewNNIterator(q)
	if err != nil {
		t.Fatal(err)
	}
	checkResultSet(t, "post-writer reader", drainIterator(t, it2), sigTable(d, 0, 500), q)
}

// TestIteratorCloseReleasesPin verifies Close releases the snapshot so a
// later update can reclaim the superseded epoch's pages, and that Close is
// idempotent and safe before exhaustion.
func TestIteratorCloseReleasesPin(t *testing.T) {
	d := questData(t, 400, 577)
	m := signature.NewDirectMapper(d.Universe)
	tr := buildTree(t, d.Slice(0, 200), testOptions(200))
	q := signature.FromItems(m, d.Tx[0])

	it, err := tr.NewNNIterator(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := it.Next(); err != nil || !ok {
		t.Fatalf("first step: ok=%v err=%v", ok, err)
	}
	it.Close()
	it.Close() // idempotent
	if _, ok, err := it.Next(); ok || err != nil {
		t.Fatalf("Next after Close: ok=%v err=%v, want exhausted", ok, err)
	}

	// With no pins outstanding, updates reclaim superseded pages: page
	// usage must stay bounded across repeated churn on the same keys.
	for round := 0; round < 3; round++ {
		for i := 200; i < 400; i++ {
			if err := tr.Insert(signature.FromItems(m, d.Tx[i]), dataset.TID(i)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 200; i < 400; i++ {
			if _, err := tr.Delete(signature.FromItems(m, d.Tx[i]), dataset.TID(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	after := tr.Pool().Pager().NumPages()
	// Grow once more and churn again; a reclaim leak would keep growing.
	for i := 200; i < 400; i++ {
		if err := tr.Insert(signature.FromItems(m, d.Tx[i]), dataset.TID(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 200; i < 400; i++ {
		if _, err := tr.Delete(signature.FromItems(m, d.Tx[i]), dataset.TID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if again := tr.Pool().Pager().NumPages(); again > after {
		t.Fatalf("pages grew across identical churn rounds: %d then %d — deferred frees are leaking", after, again)
	}
}

// TestBatchRaceLane runs the batch engine at eight workers against live
// insert and delete traffic. Its value is under `make race`: every
// snapshot pin/release, node-cache probe, and buffer-pool access on the
// lock-free read path runs under the race detector here.
func TestBatchRaceLane(t *testing.T) {
	d := questData(t, 1000, 313)
	m := signature.NewDirectMapper(d.Universe)
	tr := buildTree(t, d.Slice(0, 500), testOptions(200))

	queries := make([]signature.Signature, 64)
	for i := range queries {
		queries[i] = signature.FromItems(m, d.Tx[(i*17)%1000])
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 500; i < 1000; i++ {
			if err := tr.Insert(signature.FromItems(m, d.Tx[i]), dataset.TID(i)); err != nil {
				t.Errorf("insert %d: %v", i, err)
				return
			}
			if i%3 == 0 {
				if _, err := tr.Delete(signature.FromItems(m, d.Tx[i-400]), dataset.TID(i-400)); err != nil {
					t.Errorf("delete %d: %v", i-400, err)
					return
				}
			}
		}
	}()

	ctx := context.Background()
	for round := 0; round < 4; round++ {
		res, err := tr.BatchNN(ctx, queries, 5, 8)
		if err != nil {
			t.Fatalf("BatchNN round %d: %v", round, err)
		}
		for i, r := range res {
			if len(r.Neighbors) == 0 {
				t.Fatalf("BatchNN round %d query %d: empty result on a populated tree", round, i)
			}
		}
		if _, err := tr.BatchRangeQuery(ctx, queries, 6, 8); err != nil {
			t.Fatalf("BatchRangeQuery round %d: %v", round, err)
		}
	}
	wg.Wait()

	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
