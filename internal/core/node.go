package core

import (
	"encoding/binary"
	"fmt"

	"sgtree/internal/bitset"
	"sgtree/internal/dataset"
	"sgtree/internal/signature"
	"sgtree/internal/storage"
)

// Layout of a node, as a logical byte string distributed over one or more
// chained pages (multipage nodes are the implementation option Section 3
// mentions for signatures large relative to the page):
//
//	byte 0      flags (bit 0: leaf)
//	byte 1      level (0 = leaf)
//	bytes 2..3  entry count (uint16, little endian)
//	bytes 4..7  continuation page id (0 = node fits its primary page)
//	then per entry: encoded signature (codec), a uint32 ref (child page id
//	in directory nodes, transaction id in leaves) and — in directory nodes
//	of trees with cardinality statistics — uint16 min and max cardinality
//	of the data signatures in the subtree.
//
// Continuation pages start with their own 4-byte next pointer followed by
// the next chunk of the logical byte string.
const (
	nodeHeaderSize = 8
	nodeNextOff    = 4
	contHeaderSize = 4
	entryRefSize   = 4
	entryCardSize  = 4 // uint16 lo + uint16 hi
	flagLeaf       = 0x01
)

// entry is one ⟨signature, ptr/tid⟩ pair of a node (Section 3). In a leaf
// the signature is the transaction's signature and the ref its id; in a
// directory node the signature is the OR of everything below the child.
// When cardinality statistics are enabled, directory entries additionally
// carry the [lo, hi] range of data-signature areas in their subtree.
type entry struct {
	sig    signature.Signature
	child  storage.PageID // directory nodes
	tid    dataset.TID    // leaf nodes
	lo, hi int            // cardinality range (CardStats directory entries)
}

// ref returns the 4-byte reference for serialization.
func (e *entry) ref(leaf bool) uint32 {
	if leaf {
		return uint32(e.tid)
	}
	return uint32(e.child)
}

// node is the in-memory form of a tree node. cont lists the continuation
// pages the node occupied when it was read (reused and trimmed on write).
//
// Decoding lays all entry signatures out in one contiguous []uint64 slab
// (see decodeBuf), so a freshly read node costs three allocations however
// many entries it has and the entry-scan loops of the query algorithms walk
// adjacent memory. Entries appended later by update paths (splits, merges)
// carry their own independently allocated signatures; the two kinds mix
// freely because every entry's signature is self-describing.
type node struct {
	id      storage.PageID
	leaf    bool
	level   int // 0 for leaves
	entries []entry
	cont    []storage.PageID

	// areas caches each entry's signature area (popcount). It is populated
	// only when the node enters the decoded-node cache — cached nodes are
	// immutable, so the cache can never go stale — and stays nil on the
	// mutable nodes the update paths decode privately. Read through
	// entryArea, never directly.
	areas []int

	// slab is the decoded entry signatures as a structure-of-arrays matrix:
	// row i (entry i's signature words) occupies
	// slab[i*slabStride : i*slabStride+words], with the row padding beyond
	// the signature's words kept zero. The base address is 64-byte aligned
	// and slabStride is a multiple of 4 words, which is what the batched
	// AVX2 kernels (bitset.*Slab) need to scan whole nodes in one blocked
	// pass. Entry views alias the same memory, so the slab is valid only
	// while the entry set decodeBuf produced is intact: any mutation that
	// removes, replaces, or reorders entries must call dropSlab (appends
	// are caught by the slabRows != len(entries) check in slabScannable).
	slab       []uint64
	slabStride int
	slabRows   int
}

// slabScannable reports whether the node's entry signatures can be scanned
// through the slab kernels: a slab exists and still describes exactly the
// current entries.
func (n *node) slabScannable() bool {
	return n.slab != nil && n.slabRows == len(n.entries)
}

// dropSlab detaches the slab after a mutation that invalidates row order.
// The entry views keep aliasing the old memory, so signatures stay valid;
// only the batched scans fall back to per-entry kernels.
func (n *node) dropSlab() {
	n.slab = nil
	n.slabRows = 0
}

// slabStrideFor picks the slab row stride for signatures of the given word
// count: whole 64-byte cache lines per row once signatures exceed half a
// line, a half-line otherwise. Always a multiple of 4 (one 32-byte AVX2
// chunk), so vectorized row scans never need a tail.
func slabStrideFor(words int) int {
	if words <= 4 {
		return 4
	}
	return (words + 7) &^ 7
}

// entryArea returns entry i's signature area, using the cached popcount
// when the node carries one.
func (n *node) entryArea(i int) int {
	if n.areas != nil {
		return n.areas[i]
	}
	return n.entries[i].sig.Area()
}

// cacheAreas populates the per-entry area cache. Only the read path calls
// it, immediately before publishing the node to the decoded-node cache.
func (n *node) cacheAreas() {
	n.areas = make([]int, len(n.entries))
	for i := range n.entries {
		n.areas[i] = n.entries[i].sig.Area()
	}
}

// nodeLayout bundles everything needed to serialize nodes: the signature
// codec, whether directory entries carry cardinality statistics, and the
// page geometry (a node may span up to maxPages chained pages).
type nodeLayout struct {
	codec     signature.Codec
	cardStats bool
	pageSize  int
	maxPages  int
}

// budget returns the maximum logical byte size of a node: one primary page
// plus maxPages-1 continuation pages (each losing its chain pointer).
func (l nodeLayout) budget() int {
	return l.pageSize + (l.maxPages-1)*(l.pageSize-contHeaderSize)
}

// entrySize returns the on-page size of one entry of a (leaf or directory)
// node.
func (l nodeLayout) entrySize(sig signature.Signature, leaf bool) int {
	sz := l.codec.EncodedSize(sig) + entryRefSize
	if l.cardStats && !leaf {
		sz += entryCardSize
	}
	return sz
}

// encodedSize returns the node's on-page size.
func (l nodeLayout) encodedSize(n *node) int {
	sz := nodeHeaderSize
	for i := range n.entries {
		sz += l.entrySize(n.entries[i].sig, n.leaf)
	}
	return sz
}

// fits reports whether the node serializes within the node byte budget.
func (l nodeLayout) fits(n *node) bool {
	return l.encodedSize(n) <= l.budget()
}

// encodeBuf serializes the node's logical byte string: header (with a zero
// continuation pointer — the tree fills it while distributing the buffer
// over pages) followed by the entries.
func (l nodeLayout) encodeBuf(n *node) ([]byte, error) {
	if len(n.entries) > 0xFFFF {
		return nil, fmt.Errorf("core: node %d has %d entries, exceeding the format limit", n.id, len(n.entries))
	}
	var flags byte
	if n.leaf {
		flags |= flagLeaf
	}
	buf := make([]byte, nodeHeaderSize, l.encodedSize(n))
	buf[0] = flags
	buf[1] = byte(n.level)
	binary.LittleEndian.PutUint16(buf[2:4], uint16(len(n.entries)))
	for i := range n.entries {
		buf = l.codec.Append(buf, n.entries[i].sig)
		var ref [entryRefSize]byte
		binary.LittleEndian.PutUint32(ref[:], n.entries[i].ref(n.leaf))
		buf = append(buf, ref[:]...)
		if l.cardStats && !n.leaf {
			var cards [entryCardSize]byte
			binary.LittleEndian.PutUint16(cards[0:], uint16(n.entries[i].lo))
			binary.LittleEndian.PutUint16(cards[2:], uint16(n.entries[i].hi))
			buf = append(buf, cards[:]...)
		}
	}
	return buf, nil
}

// decodeBuf parses a node from its assembled logical byte string.
func (l nodeLayout) decodeBuf(id storage.PageID, buf []byte) (*node, error) {
	if len(buf) < nodeHeaderSize {
		return nil, fmt.Errorf("core: page %d too small for a node header", id)
	}
	n := &node{
		id:    id,
		leaf:  buf[0]&flagLeaf != 0,
		level: int(buf[1]),
	}
	count := int(binary.LittleEndian.Uint16(buf[2:4]))
	n.entries = make([]entry, count)
	// One contiguous word slab and one view-header slab back every entry
	// signature: 3 allocations per node instead of 2 per entry, and the
	// scan loops of bound/compare touch sequential memory. The slab is laid
	// out with a padded, cache-line-aligned row stride (see the node.slab
	// field) so the batched kernels can process whole nodes; padding words
	// start zero (AlignedWords zeroes) and stay zero because the entry
	// views only ever touch the first `words` words of their row.
	words := (l.codec.Length + 63) / 64
	stride := slabStrideFor(words)
	slab := bitset.AlignedWords(count * stride)
	views := make([]bitset.Bitset, count)
	pos := nodeHeaderSize
	for i := 0; i < count; i++ {
		views[i] = bitset.View(slab[i*stride:i*stride+words], l.codec.Length)
		sig := signature.Signature{Bitset: &views[i]}
		used, err := l.codec.DecodeInto(buf[pos:], sig)
		if err != nil {
			return nil, fmt.Errorf("core: node %d entry %d: %w", id, i, err)
		}
		pos += used
		if pos+entryRefSize > len(buf) {
			return nil, fmt.Errorf("core: node %d entry %d: truncated ref", id, i)
		}
		ref := binary.LittleEndian.Uint32(buf[pos : pos+entryRefSize])
		pos += entryRefSize
		n.entries[i].sig = sig
		if n.leaf {
			n.entries[i].tid = dataset.TID(ref)
		} else {
			n.entries[i].child = storage.PageID(ref)
		}
		if l.cardStats && !n.leaf {
			if pos+entryCardSize > len(buf) {
				return nil, fmt.Errorf("core: node %d entry %d: truncated cardinality stats", id, i)
			}
			n.entries[i].lo = int(binary.LittleEndian.Uint16(buf[pos:]))
			n.entries[i].hi = int(binary.LittleEndian.Uint16(buf[pos+2:]))
			pos += entryCardSize
		}
	}
	n.slab = slab
	n.slabStride = stride
	n.slabRows = count
	return n, nil
}

// coverSignature returns the OR of all entry signatures — the signature the
// parent entry for this node must carry (Definition 5).
func (n *node) coverSignature(length int) signature.Signature {
	s := signature.New(length)
	for i := range n.entries {
		s.Merge(n.entries[i].sig)
	}
	return s
}

// cardRange returns the [lo, hi] range of data cardinalities under the
// node: entry areas for leaves, merged child ranges for directory nodes.
// An empty node yields (0, 0).
func (n *node) cardRange() (int, int) {
	if len(n.entries) == 0 {
		return 0, 0
	}
	if n.leaf {
		lo, hi := n.entries[0].sig.Area(), n.entries[0].sig.Area()
		for i := 1; i < len(n.entries); i++ {
			a := n.entries[i].sig.Area()
			if a < lo {
				lo = a
			}
			if a > hi {
				hi = a
			}
		}
		return lo, hi
	}
	lo, hi := n.entries[0].lo, n.entries[0].hi
	for i := 1; i < len(n.entries); i++ {
		if n.entries[i].lo < lo {
			lo = n.entries[i].lo
		}
		if n.entries[i].hi > hi {
			hi = n.entries[i].hi
		}
	}
	return lo, hi
}

// parentEntry builds the directory entry a parent must hold for this node:
// the exact cover and, for CardStats trees, the cardinality range.
func (n *node) parentEntry(length int) entry {
	e := entry{sig: n.coverSignature(length), child: n.id}
	e.lo, e.hi = n.cardRange()
	return e
}

// removeEntry deletes entry i preserving order (order is irrelevant to the
// structure but stable behaviour simplifies testing). The slab no longer
// matches the entry rows afterwards, so it is dropped.
func (n *node) removeEntry(i int) {
	n.entries = append(n.entries[:i], n.entries[i+1:]...)
	n.dropSlab()
}
