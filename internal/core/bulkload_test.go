package core

import (
	"math/rand"
	"testing"

	"sgtree/internal/dataset"
	"sgtree/internal/signature"
)

func bulkItems(t *testing.T, d *dataset.Dataset) []BulkItem {
	t.Helper()
	m := signature.NewDirectMapper(d.Universe)
	items := make([]BulkItem, d.Len())
	for i, tx := range d.Tx {
		items[i] = BulkItem{Sig: signature.FromItems(m, tx), TID: dataset.TID(i)}
	}
	return items
}

func TestBulkLoadBasic(t *testing.T) {
	d := questData(t, 700, 41)
	tr := mustTree(t, testOptions(200))
	if err := tr.BulkLoad(bulkItems(t, d)); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 700 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 2 {
		t.Errorf("bulk-loaded tree too flat: height %d", tr.Height())
	}
	// Every item retrievable, NN answers match the oracle.
	for _, qi := range []int{0, 13, 350, 699} {
		q := d.Tx[qi]
		got, _, err := tr.KNN(sigOf(t, 200, q), 3)
		if err != nil {
			t.Fatal(err)
		}
		want := linearKNN(d, q, 3)
		for i := range got {
			if got[i].Dist != want[i] {
				t.Fatalf("query %d rank %d: %v vs %v", qi, i, got[i].Dist, want[i])
			}
		}
	}
}

func TestBulkLoadEdgeSizes(t *testing.T) {
	m := signature.NewDirectMapper(64)
	for _, n := range []int{0, 1, 2, 3, 5, 9, 17} {
		tr := mustTree(t, testOptions(64))
		items := make([]BulkItem, n)
		for i := range items {
			items[i] = BulkItem{Sig: signature.FromItems(m, []int{i % 64, (i * 7) % 64}), TID: dataset.TID(i)}
		}
		if err := tr.BulkLoad(items); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, tr.Len())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestBulkLoadReplacesExisting(t *testing.T) {
	d := questData(t, 200, 43)
	tr := buildTree(t, d, testOptions(200))
	pagesBefore := tr.Pool().Pager().NumPages()
	// Reload with only half the items; the old pages must be recycled.
	items := bulkItems(t, d)[:100]
	if err := tr.BulkLoad(items); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if after := tr.Pool().Pager().NumPages(); after > pagesBefore {
		t.Errorf("pages grew from %d to %d; old tree not freed", pagesBefore, after)
	}
}

func TestBulkLoadRejectsBadItems(t *testing.T) {
	tr := mustTree(t, testOptions(64))
	if err := tr.BulkLoad([]BulkItem{{Sig: signature.New(63)}}); err == nil {
		t.Error("wrong-length signature accepted")
	}
}

func TestBulkLoadUpdatableAfter(t *testing.T) {
	d := questData(t, 300, 47)
	tr := mustTree(t, testOptions(200))
	if err := tr.BulkLoad(bulkItems(t, d)); err != nil {
		t.Fatal(err)
	}
	m := signature.NewDirectMapper(200)
	// Insert and delete on top of the packed tree.
	extra := dataset.NewTransaction(1, 2, 3)
	if err := tr.Insert(signature.FromItems(m, extra), 9999); err != nil {
		t.Fatal(err)
	}
	found, err := tr.Delete(signature.FromItems(m, d.Tx[10]), 10)
	if err != nil || !found {
		t.Fatalf("delete after bulk load: %v %v", found, err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 300 {
		t.Errorf("Len = %d, want 300", tr.Len())
	}
}

func TestBulkLoadQualityComparableToInsertion(t *testing.T) {
	// The gray-code packed tree should prune NN queries at least roughly as
	// well as the incrementally built tree, with higher storage utilization.
	d := questData(t, 1500, 53)
	inc := buildTree(t, d, testOptions(200))
	bulk := mustTree(t, testOptions(200))
	if err := bulk.BulkLoad(bulkItems(t, d)); err != nil {
		t.Fatal(err)
	}
	incStats, err := inc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	bulkStats, err := bulk.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if bulkStats.Nodes >= incStats.Nodes {
		t.Errorf("bulk tree has %d nodes, incremental %d; packing should be denser",
			bulkStats.Nodes, incStats.Nodes)
	}
	r := rand.New(rand.NewSource(2))
	incWork, bulkWork := 0, 0
	for i := 0; i < 30; i++ {
		q := sigOf(t, 200, d.Tx[r.Intn(d.Len())])
		_, s1, err := inc.KNN(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		_, s2, err := bulk.KNN(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		incWork += s1.DataCompared
		bulkWork += s2.DataCompared
	}
	t.Logf("data compared: incremental %d, bulk %d", incWork, bulkWork)
	if bulkWork > 3*incWork {
		t.Errorf("bulk-loaded tree prunes far worse: %d vs %d", bulkWork, incWork)
	}
}

func TestGrayCodeKeyOrdering(t *testing.T) {
	// Adjacent binary values differ by one bit in gray code; the key order
	// must match the integer interpretation's gray sequence for small
	// signatures. Verify the key of b and b+1 differ and ordering is total.
	mk := func(bits ...int) signature.Signature {
		return signature.FromItems(signature.NewDirectMapper(8), bits)
	}
	a := grayCodeKey(mk(0))    // 10000000
	b := grayCodeKey(mk(0, 1)) // 11000000
	c := grayCodeKey(mk(1))    // 01000000
	zero := grayCodeKey(mk())  // 00000000
	if compareGrayKeys(a, a) != 0 {
		t.Error("key not equal to itself")
	}
	// Gray code of bitstrings ordered by MSB-first value: 000..=0, gray(1xx) > gray(0xx) on the first bit.
	if compareGrayKeys(zero, a) >= 0 {
		t.Error("empty signature should sort before bit-0 signature")
	}
	// The gray code of 11000000 (b) is 10100000, of 10000000 (a) is 11000000:
	// so a sorts after b.
	if compareGrayKeys(b, a) >= 0 {
		t.Error("gray order of 110 vs 100 wrong")
	}
	if compareGrayKeys(zero, c) >= 0 {
		t.Error("empty should sort first")
	}
}

func TestGrayCodeCrossWordCarry(t *testing.T) {
	// Bit 63 set must influence gray bit 64.
	s1 := signature.FromItems(signature.NewDirectMapper(128), []int{63, 64})
	s2 := signature.FromItems(signature.NewDirectMapper(128), []int{64})
	k1 := grayCodeKey(s1)
	k2 := grayCodeKey(s2)
	// gray(s1) bit64 = s1[64] xor s1[63] = 0; gray(s2) bit64 = 1.
	// Check word 1 differs accordingly.
	if k1[1] == k2[1] {
		t.Error("cross-word carry not propagated into gray code")
	}
}
