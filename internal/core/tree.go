package core

import (
	"encoding/binary"
	"fmt"
	"sync"

	"sgtree/internal/dataset"
	"sgtree/internal/signature"
	"sgtree/internal/storage"
)

// Tree is a signature tree: a paginated, height-balanced index over
// ⟨signature, tid⟩ pairs. All methods are safe for concurrent use by
// multiple goroutines: queries run concurrently under a read lock while
// updates (Insert, Delete, BulkLoad) take the tree exclusively.
type Tree struct {
	mu     sync.RWMutex
	opts   Options
	codec  signature.Codec
	layout nodeLayout
	pool   *storage.BufferPool

	// ncache caches decoded nodes above the buffer pool for the query
	// paths; nil when disabled (NodeCacheSize < 0). Invalidation happens
	// under mu's write lock in writeNode/freeNode.
	ncache *nodeCache

	// observer receives traversal events from every query (see SetObserver);
	// guarded by mu. counters accumulate across queries atomically, since
	// many queries run concurrently under the read lock.
	observer Observer
	counters treeCounters

	metaPage storage.PageID
	root     storage.PageID // InvalidPage for an empty tree
	height   int            // levels; 1 = root is a leaf; 0 = empty
	count    int            // indexed signatures

	// Forced-reinsert state, alive only during one top-level Insert:
	// reinsertActive marks levels that already evicted this round and
	// reinsertQueue holds evicted entries awaiting re-insertion.
	reinsertActive map[int]bool
	reinsertQueue  []reinsertItem
}

// Meta page layout: magic | root | height | count | sigLen | flags.
const (
	treeMagic     = 0x53475431 // "SGT1"
	metaSize      = 4 + 4 + 4 + 8 + 4 + 4
	metaCompress  = 0x1
	metaCardStats = 0x2
)

// New creates an SG-tree over a fresh in-memory pager.
func New(opts Options) (*Tree, error) {
	return NewWithPager(storage.NewMemPager(opts.withDefaults().PageSize), opts)
}

// NewWithPager creates an SG-tree on an empty pager (its first allocation
// becomes the tree's meta page).
func NewWithPager(p storage.Pager, opts Options) (*Tree, error) {
	return NewWithPagerWAL(p, nil, opts)
}

// NewWithPagerWAL is NewWithPager with durability: when w is non-nil it is
// attached to the tree's buffer pool, making every Sync/Close an atomic,
// crash-recoverable commit (see storage.BufferPool.AttachWAL and
// storage.OpenFilePagerRecover).
func NewWithPagerWAL(p storage.Pager, w *storage.WAL, opts Options) (*Tree, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if p.PageSize() != opts.PageSize {
		return nil, fmt.Errorf("core: pager page size %d != options page size %d", p.PageSize(), opts.PageSize)
	}
	t := &Tree{
		opts:   opts,
		codec:  opts.codec(),
		layout: nodeLayout{codec: opts.codec(), cardStats: opts.CardStats, pageSize: opts.PageSize, maxPages: opts.MaxNodePages},
		pool:   storage.NewBufferPool(p, opts.BufferPages),
		ncache: newTreeNodeCache(opts),
	}
	if w != nil {
		if w.PageSize() != opts.PageSize {
			return nil, fmt.Errorf("core: WAL page size %d != options page size %d", w.PageSize(), opts.PageSize)
		}
		t.pool.AttachWAL(w)
	}
	id, page, err := t.pool.NewPage()
	if err != nil {
		return nil, err
	}
	t.metaPage = id
	t.encodeMeta(page)
	t.pool.Unpin(id, true)
	return t, nil
}

// Open reopens a tree previously created with NewWithPager on a persistent
// pager. The meta page is assumed to be the pager's first page. The options
// must match the ones the tree was created with (signature length and
// compression are verified against the stored meta).
func Open(p storage.Pager, metaPage storage.PageID, opts Options) (*Tree, error) {
	return OpenWithWAL(p, nil, metaPage, opts)
}

// OpenWithWAL is Open with durability (see NewWithPagerWAL). Recover the
// pager first (storage.OpenFilePagerRecover) if the previous process may
// have crashed: opening skips no recovery on its own.
func OpenWithWAL(p storage.Pager, w *storage.WAL, metaPage storage.PageID, opts Options) (*Tree, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	t := &Tree{
		opts:     opts,
		codec:    opts.codec(),
		layout:   nodeLayout{codec: opts.codec(), cardStats: opts.CardStats, pageSize: opts.PageSize, maxPages: opts.MaxNodePages},
		pool:     storage.NewBufferPool(p, opts.BufferPages),
		ncache:   newTreeNodeCache(opts),
		metaPage: metaPage,
	}
	if w != nil {
		if w.PageSize() != opts.PageSize {
			return nil, fmt.Errorf("core: WAL page size %d != options page size %d", w.PageSize(), opts.PageSize)
		}
		t.pool.AttachWAL(w)
	}
	page, err := t.pool.Get(metaPage)
	if err != nil {
		return nil, err
	}
	defer t.pool.Unpin(metaPage, false)
	if err := t.decodeMeta(page); err != nil {
		return nil, err
	}
	return t, nil
}

func (t *Tree) encodeMeta(page []byte) {
	binary.LittleEndian.PutUint32(page[0:], treeMagic)
	binary.LittleEndian.PutUint32(page[4:], uint32(t.root))
	binary.LittleEndian.PutUint32(page[8:], uint32(t.height))
	binary.LittleEndian.PutUint64(page[12:], uint64(t.count))
	binary.LittleEndian.PutUint32(page[20:], uint32(t.opts.SignatureLength))
	var flags uint32
	if t.opts.Compress {
		flags |= metaCompress
	}
	if t.opts.CardStats {
		flags |= metaCardStats
	}
	binary.LittleEndian.PutUint32(page[24:], flags)
}

func (t *Tree) decodeMeta(page []byte) error {
	if len(page) < metaSize {
		return fmt.Errorf("core: meta page too small")
	}
	if binary.LittleEndian.Uint32(page[0:]) != treeMagic {
		return fmt.Errorf("core: not an SG-tree meta page")
	}
	t.root = storage.PageID(binary.LittleEndian.Uint32(page[4:]))
	t.height = int(binary.LittleEndian.Uint32(page[8:]))
	t.count = int(binary.LittleEndian.Uint64(page[12:]))
	gotLen := int(binary.LittleEndian.Uint32(page[20:]))
	if gotLen != t.opts.SignatureLength {
		return fmt.Errorf("core: stored signature length %d != configured %d", gotLen, t.opts.SignatureLength)
	}
	flags := binary.LittleEndian.Uint32(page[24:])
	if (flags&metaCompress != 0) != t.opts.Compress {
		return fmt.Errorf("core: stored compression flag differs from configured options")
	}
	if (flags&metaCardStats != 0) != t.opts.CardStats {
		return fmt.Errorf("core: stored cardinality-stats flag differs from configured options")
	}
	return nil
}

// flushMeta writes the meta fields through the pool.
func (t *Tree) flushMeta() error {
	page, err := t.pool.Get(t.metaPage)
	if err != nil {
		return err
	}
	t.encodeMeta(page)
	t.pool.Unpin(t.metaPage, true)
	return nil
}

// Close flushes all dirty state to the pager. It does not close the pager
// (the caller owns it when using NewWithPager; New's in-memory pager needs
// no closing).
func (t *Tree) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.syncLocked()
}

// Sync flushes all dirty state to the pager. With a WAL attached this is
// the tree's commit point: the updates since the previous Sync become
// durable atomically — after a crash, recovery restores either all of them
// or none.
func (t *Tree) Sync() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.syncLocked()
}

func (t *Tree) syncLocked() error {
	if err := t.flushMeta(); err != nil {
		return err
	}
	return t.pool.FlushAll()
}

// runUpdate executes one mutating operation inside a buffer-pool undo
// scope. If the operation fails at any point — typically because the pager
// surfaced an I/O error mid-update — every page it touched and the tree's
// metadata are rolled back in memory, so a storage fault never leaves the
// in-memory tree structurally broken: the error surfaces and the tree
// remains usable.
func (t *Tree) runUpdate(body func() error) error {
	t.pool.BeginUndo()
	root, height, count := t.root, t.height, t.count
	if err := body(); err != nil {
		t.root, t.height, t.count = root, height, count
		t.reinsertQueue = nil
		// Rollback restores page bytes without passing through writeNode;
		// the per-page invalidations already fired for every touched page,
		// but bump the cache epoch as well so no decode from the failed
		// update can survive.
		if t.ncache != nil {
			t.ncache.invalidateAll()
		}
		if rbErr := t.pool.RollbackUndo(); rbErr != nil {
			return fmt.Errorf("%w (undo rollback also failed: %v)", err, rbErr)
		}
		return err
	}
	return t.pool.CommitUndo()
}

// Options returns the tree's configuration (defaults applied).
func (t *Tree) Options() Options { return t.opts }

// Len returns the number of indexed signatures.
func (t *Tree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.count
}

// Height returns the number of levels (0 when empty, 1 when the root is a leaf).
func (t *Tree) Height() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.height
}

// Pool exposes the buffer pool for I/O accounting by benchmarks.
func (t *Tree) Pool() *storage.BufferPool { return t.pool }

// DropCaches flushes dirty pages and then empties both read caches — the
// decoded-node cache and the buffer pool — so the next query starts
// entirely cold. The paper's I/O experiments call this between queries;
// clearing only the buffer pool would leave decoded nodes behind and
// report near-zero page misses.
func (t *Tree) DropCaches() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ncache != nil {
		t.ncache.invalidateAll()
	}
	return t.pool.Clear()
}

// --- node I/O through the buffer pool ---
//
// A node occupies a primary page plus up to MaxNodePages-1 continuation
// pages chained through 4-byte next pointers; reading an L-page node costs
// L page accesses, which is how multipage nodes show up in the I/O metric.

// readNodeCached is the query-path node read: it consults the decoded-node
// cache before falling back to readNode, and publishes fresh decodes. The
// returned node may be shared by concurrent queries and MUST NOT be
// mutated — update paths use readNode directly, which always hands out a
// private copy they may modify in place.
func (t *Tree) readNodeCached(id storage.PageID) (*node, error) {
	if t.ncache == nil {
		return t.readNode(id)
	}
	if n := t.ncache.get(id); n != nil {
		return n, nil
	}
	n, err := t.readNode(id)
	if err != nil {
		return nil, err
	}
	n.cacheAreas()
	t.ncache.put(id, n)
	return n, nil
}

// readNode assembles the node's logical byte string from its page chain
// and decodes it.
func (t *Tree) readNode(id storage.PageID) (*node, error) {
	page, err := t.pool.Get(id)
	if err != nil {
		return nil, err
	}
	next := storage.PageID(binary.LittleEndian.Uint32(page[nodeNextOff:]))
	var buf []byte
	if next == storage.InvalidPage {
		// Common case: single-page node, decode straight from the frame.
		n, err := t.layout.decodeBuf(id, page)
		t.pool.Unpin(id, false)
		return n, err
	}
	buf = append(buf, page...)
	t.pool.Unpin(id, false)
	var cont []storage.PageID
	for next != storage.InvalidPage {
		cid := next
		cpage, err := t.pool.Get(cid)
		if err != nil {
			return nil, err
		}
		next = storage.PageID(binary.LittleEndian.Uint32(cpage[:contHeaderSize]))
		buf = append(buf, cpage[contHeaderSize:]...)
		t.pool.Unpin(cid, false)
		cont = append(cont, cid)
		if len(cont) > t.opts.MaxNodePages {
			return nil, fmt.Errorf("core: node %d chain exceeds MaxNodePages %d", id, t.opts.MaxNodePages)
		}
	}
	n, err := t.layout.decodeBuf(id, buf)
	if err != nil {
		return nil, err
	}
	n.cont = cont
	return n, nil
}

// writeNode distributes the node's logical byte string over its page
// chain, growing or trimming continuation pages as the node's size moved.
func (t *Tree) writeNode(n *node) error {
	// The page's bytes are about to change; drop any cached decode before
	// they do. Updates hold the write lock, so no query can re-fill the
	// slot until the update completes (or rolls back, which bumps the
	// cache epoch).
	if t.ncache != nil {
		t.ncache.invalidate(n.id)
	}
	buf, err := t.layout.encodeBuf(n)
	if err != nil {
		return err
	}
	if len(buf) > t.layout.budget() {
		return fmt.Errorf("core: node %d overflows node budget: %d > %d bytes", n.id, len(buf), t.layout.budget())
	}
	// How many continuation pages does this size need?
	needed := 0
	if len(buf) > t.opts.PageSize {
		rest := len(buf) - t.opts.PageSize
		chunk := t.opts.PageSize - contHeaderSize
		needed = (rest + chunk - 1) / chunk
	}
	// Grow or trim the chain.
	for len(n.cont) < needed {
		id, page, err := t.pool.NewPage()
		if err != nil {
			return err
		}
		_ = page
		t.pool.Unpin(id, true)
		n.cont = append(n.cont, id)
	}
	for len(n.cont) > needed {
		last := n.cont[len(n.cont)-1]
		if err := t.pool.Discard(last); err != nil {
			return err
		}
		n.cont = n.cont[:len(n.cont)-1]
	}
	// Primary page: header chunk with the chain pointer patched in.
	primary, err := t.pool.Get(n.id)
	if err != nil {
		return err
	}
	take := len(buf)
	if take > t.opts.PageSize {
		take = t.opts.PageSize
	}
	copy(primary, buf[:take])
	for i := take; i < t.opts.PageSize; i++ {
		primary[i] = 0
	}
	var firstCont storage.PageID
	if needed > 0 {
		firstCont = n.cont[0]
	}
	binary.LittleEndian.PutUint32(primary[nodeNextOff:], uint32(firstCont))
	t.pool.Unpin(n.id, true)
	// Continuation pages.
	pos := take
	for ci := 0; ci < needed; ci++ {
		cid := n.cont[ci]
		cpage, err := t.pool.Get(cid)
		if err != nil {
			return err
		}
		var next storage.PageID
		if ci+1 < needed {
			next = n.cont[ci+1]
		}
		binary.LittleEndian.PutUint32(cpage[:contHeaderSize], uint32(next))
		take := len(buf) - pos
		if max := t.opts.PageSize - contHeaderSize; take > max {
			take = max
		}
		copy(cpage[contHeaderSize:], buf[pos:pos+take])
		for i := contHeaderSize + take; i < t.opts.PageSize; i++ {
			cpage[i] = 0
		}
		pos += take
		t.pool.Unpin(cid, true)
	}
	return nil
}

func (t *Tree) allocNode(leaf bool, level int) (*node, error) {
	id, page, err := t.pool.NewPage()
	if err != nil {
		return nil, err
	}
	_ = page
	t.pool.Unpin(id, true)
	n := &node{id: id, leaf: leaf, level: level}
	return n, t.writeNode(n)
}

// freeNode releases the node's primary page and its continuation chain.
func (t *Tree) freeNode(n *node) error {
	if t.ncache != nil {
		t.ncache.invalidate(n.id)
	}
	for _, cid := range n.cont {
		if err := t.pool.Discard(cid); err != nil {
			return err
		}
	}
	n.cont = nil
	return t.pool.Discard(n.id)
}

// --- insertion (Figure 3) ---

// Insert adds a ⟨signature, tid⟩ pair to the tree. The signature is cloned,
// so the caller may reuse it.
func (t *Tree) Insert(sig signature.Signature, tid dataset.TID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.checkDataSignature(sig); err != nil {
		return err
	}
	return t.runUpdate(func() error {
		e := entry{sig: sig.Clone(), tid: tid}
		if t.opts.ForcedReinsert {
			t.reinsertActive = map[int]bool{}
			defer func() { t.reinsertActive = nil }()
		}
		if err := t.insertEntry(e, 0); err != nil {
			return err
		}
		if err := t.drainReinserts(); err != nil {
			return err
		}
		t.count++
		return nil
	})
}

func (t *Tree) checkDataSignature(sig signature.Signature) error {
	if sig.Len() != t.opts.SignatureLength {
		return fmt.Errorf("core: signature length %d != tree length %d", sig.Len(), t.opts.SignatureLength)
	}
	if fc := t.opts.FixedCardinality; fc > 0 && sig.Area() != fc {
		return fmt.Errorf("core: signature area %d violates fixed cardinality %d", sig.Area(), fc)
	}
	return nil
}

// insertEntry inserts e into a node at targetLevel, growing the tree as
// needed. Caller holds the lock and maintains count.
func (t *Tree) insertEntry(e entry, targetLevel int) error {
	if targetLevel == 0 {
		// Data entries carry their own cardinality as a degenerate range,
		// so ancestors can maintain [lo, hi] without re-deriving it.
		a := e.sig.Area()
		e.lo, e.hi = a, a
	}
	if t.root == storage.InvalidPage {
		if targetLevel != 0 {
			return fmt.Errorf("core: internal: reinsertion at level %d into an empty tree", targetLevel)
		}
		root, err := t.allocNode(true, 0)
		if err != nil {
			return err
		}
		root.entries = append(root.entries, e)
		if err := t.writeNode(root); err != nil {
			return err
		}
		t.root = root.id
		t.height = 1
		return nil
	}
	rootNode, err := t.readNode(t.root)
	if err != nil {
		return err
	}
	if targetLevel > rootNode.level {
		return fmt.Errorf("core: internal: reinsertion level %d above root level %d", targetLevel, rootNode.level)
	}
	right, err := t.insertRec(rootNode, e, targetLevel)
	if err != nil {
		return err
	}
	if right == nil {
		return nil
	}
	// Root split: grow a new root with two entries.
	newRoot, err := t.allocNode(false, rootNode.level+1)
	if err != nil {
		return err
	}
	newRoot.entries = []entry{
		rootNode.parentEntry(t.opts.SignatureLength),
		right.parentEntry(t.opts.SignatureLength),
	}
	if err := t.writeNode(newRoot); err != nil {
		return err
	}
	t.root = newRoot.id
	t.height++
	return nil
}

// insertRec implements the generic balanced-tree insertion of Figure 3.
// It returns the freshly created sibling if n was split, nil otherwise.
func (t *Tree) insertRec(n *node, e entry, targetLevel int) (*node, error) {
	if n.level == targetLevel {
		n.entries = append(n.entries, e)
		if t.overflows(n) {
			if ok, err := t.maybeForcedReinsert(n); err != nil {
				return nil, err
			} else if ok {
				return nil, nil
			}
			return t.splitNode(n)
		}
		return nil, t.writeNode(n)
	}
	idx := t.chooseSubtree(n, e.sig)
	child, err := t.readNode(n.entries[idx].child)
	if err != nil {
		return nil, err
	}
	right, err := t.insertRec(child, e, targetLevel)
	if err != nil {
		return nil, err
	}
	if right == nil {
		// No split below: the chosen entry just absorbs the new signature
		// and widens its cardinality range. Forced reinsertion can have
		// *shrunk* the child, so in that mode the cover is recomputed
		// exactly instead of merely enlarged. With compression the grown
		// cover can encode to more bytes, so the node may overflow the
		// page even without gaining an entry.
		if t.opts.ForcedReinsert {
			n.entries[idx] = child.parentEntry(t.opts.SignatureLength)
		} else {
			n.entries[idx].sig.Merge(e.sig)
			if e.lo < n.entries[idx].lo {
				n.entries[idx].lo = e.lo
			}
			if e.hi > n.entries[idx].hi {
				n.entries[idx].hi = e.hi
			}
		}
		if t.overflows(n) {
			return t.splitNode(n)
		}
		return nil, t.writeNode(n)
	}
	// The child split: recompute its cover and add an entry for the sibling.
	n.entries[idx] = child.parentEntry(t.opts.SignatureLength)
	n.entries = append(n.entries, right.parentEntry(t.opts.SignatureLength))
	if t.overflows(n) {
		return t.splitNode(n)
	}
	return nil, t.writeNode(n)
}

// chooseSubtree picks the entry of directory node n to insert sig under,
// per Section 3.1. Three cases: a unique covering entry is taken directly;
// among several covering entries the one with minimum area wins (it is the
// most specific); with no covering entry, the configured heuristic decides.
func (t *Tree) chooseSubtree(n *node, sig signature.Signature) int {
	best := -1
	bestArea := 0
	for i := range n.entries {
		if n.entries[i].sig.Covers(sig) {
			a := n.entries[i].sig.Area()
			if best == -1 || a < bestArea {
				best, bestArea = i, a
			}
		}
	}
	if best >= 0 {
		return best
	}
	switch t.opts.Choose {
	case MinOverlap:
		return chooseMinOverlap(n, sig)
	default:
		return chooseMinEnlargement(n, sig)
	}
}

// chooseMinEnlargement picks the entry whose area grows least when
// absorbing sig; ties break on smaller area.
func chooseMinEnlargement(n *node, sig signature.Signature) int {
	best := 0
	bestEnl := n.entries[0].sig.Enlargement(sig)
	bestArea := n.entries[0].sig.Area()
	for i := 1; i < len(n.entries); i++ {
		enl := n.entries[i].sig.Enlargement(sig)
		area := n.entries[i].sig.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// chooseMinOverlap picks the entry which, once extended with sig, has the
// minimum overlap increase with the remaining entries of the node. Ties
// break on enlargement, then area. This is the costlier alternative the
// paper evaluated: O(|node|²) bitmap intersections per level.
func chooseMinOverlap(n *node, sig signature.Signature) int {
	best := 0
	bestInc, bestEnl, bestArea := -1, 0, 0
	for i := range n.entries {
		extended := n.entries[i].sig.Union(sig)
		inc := 0
		for j := range n.entries {
			if j == i {
				continue
			}
			inc += extended.Intersect(n.entries[j].sig) - n.entries[i].sig.Intersect(n.entries[j].sig)
		}
		enl := n.entries[i].sig.Enlargement(sig)
		area := n.entries[i].sig.Area()
		if bestInc == -1 || inc < bestInc ||
			(inc == bestInc && (enl < bestEnl || (enl == bestEnl && area < bestArea))) {
			best, bestInc, bestEnl, bestArea = i, inc, enl, area
		}
	}
	return best
}
