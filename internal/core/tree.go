package core

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"sgtree/internal/dataset"
	"sgtree/internal/signature"
	"sgtree/internal/storage"
)

// Tree is a signature tree: a paginated, height-balanced index over
// ⟨signature, tid⟩ pairs. All methods are safe for concurrent use by
// multiple goroutines: queries pin an immutable epoch snapshot (see
// snapshot.go) and run without locking the tree, while updates (Insert,
// Delete, BulkLoad) serialize on mu, build the new version out of fresh
// copy-on-write pages, and publish it atomically. Readers therefore never
// block writers and vice versa; each query sees exactly the tree as of
// the last publish before it started.
type Tree struct {
	mu     sync.Mutex // serializes updates; queries never take it
	opts   Options
	codec  signature.Codec
	layout nodeLayout
	pool   *storage.BufferPool

	// snap is the current published snapshot; readers pin it via
	// pinSnapshot. retireHead/retireTail chain superseded snapshots
	// oldest-first until reclaimSnapshots frees their deferred pages;
	// both are guarded by mu.
	snap       atomic.Pointer[treeSnapshot]
	retireHead *treeSnapshot
	retireTail *treeSnapshot

	// Copy-on-write state for the update in flight, guarded by mu and
	// alive only inside runUpdate. cowFresh marks pages allocated by this
	// update (safe to modify in place and to discard immediately);
	// cowFrees collects published pages the update replaced or deleted,
	// deferred to the retiring snapshot at publish time so pinned readers
	// keep seeing them.
	cowFresh map[storage.PageID]bool
	cowFrees []storage.PageID

	// ncache caches decoded nodes above the buffer pool for the query
	// paths; nil when disabled (NodeCacheSize < 0). Because updates are
	// copy-on-write, published page bytes never change; invalidation is
	// only needed when a page id is about to return to the free list
	// (reclaimSnapshots, rollback), before it can be recycled.
	ncache *nodeCache

	// observer receives traversal events from every query (see
	// SetObserver); held in an atomic box so lock-free queries can read
	// it. counters accumulate across queries atomically, since many
	// queries run concurrently.
	observer atomic.Pointer[observerBox]
	counters treeCounters

	metaPage storage.PageID
	root     storage.PageID // InvalidPage for an empty tree; guarded by mu (readers use snap)
	height   int            // levels; 1 = root is a leaf; 0 = empty; guarded by mu
	count    int            // indexed signatures; guarded by mu

	// Forced-reinsert state, alive only during one top-level Insert:
	// reinsertActive marks levels that already evicted this round and
	// reinsertQueue holds evicted entries awaiting re-insertion.
	reinsertActive map[int]bool
	reinsertQueue  []reinsertItem
}

// Meta page layout: magic | root | height | count | sigLen | flags.
const (
	treeMagic     = 0x53475431 // "SGT1"
	metaSize      = 4 + 4 + 4 + 8 + 4 + 4
	metaCompress  = 0x1
	metaCardStats = 0x2
)

// New creates an SG-tree over a fresh in-memory pager.
func New(opts Options) (*Tree, error) {
	return NewWithPager(storage.NewMemPager(opts.withDefaults().PageSize), opts)
}

// NewWithPager creates an SG-tree on an empty pager (its first allocation
// becomes the tree's meta page).
func NewWithPager(p storage.Pager, opts Options) (*Tree, error) {
	return NewWithPagerWAL(p, nil, opts)
}

// NewWithPagerWAL is NewWithPager with durability: when w is non-nil it is
// attached to the tree's buffer pool, making every Sync/Close an atomic,
// crash-recoverable commit (see storage.BufferPool.AttachWAL and
// storage.OpenFilePagerRecover).
func NewWithPagerWAL(p storage.Pager, w *storage.WAL, opts Options) (*Tree, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if p.PageSize() != opts.PageSize {
		return nil, fmt.Errorf("core: pager page size %d != options page size %d", p.PageSize(), opts.PageSize)
	}
	t := &Tree{
		opts:   opts,
		codec:  opts.codec(),
		layout: nodeLayout{codec: opts.codec(), cardStats: opts.CardStats, pageSize: opts.PageSize, maxPages: opts.MaxNodePages},
		pool:   storage.NewBufferPool(p, opts.BufferPages),
		ncache: newTreeNodeCache(opts),
	}
	if w != nil {
		if w.PageSize() != opts.PageSize {
			return nil, fmt.Errorf("core: WAL page size %d != options page size %d", w.PageSize(), opts.PageSize)
		}
		t.pool.AttachWAL(w)
	}
	id, page, err := t.pool.NewPage()
	if err != nil {
		return nil, err
	}
	t.metaPage = id
	t.encodeMeta(page)
	t.pool.Unpin(id, true)
	t.snap.Store(&treeSnapshot{root: t.root, height: t.height, count: t.count, epoch: 1})
	return t, nil
}

// Open reopens a tree previously created with NewWithPager on a persistent
// pager. The meta page is assumed to be the pager's first page. The options
// must match the ones the tree was created with (signature length and
// compression are verified against the stored meta).
func Open(p storage.Pager, metaPage storage.PageID, opts Options) (*Tree, error) {
	return OpenWithWAL(p, nil, metaPage, opts)
}

// OpenWithWAL is Open with durability (see NewWithPagerWAL). Recover the
// pager first (storage.OpenFilePagerRecover) if the previous process may
// have crashed: opening skips no recovery on its own.
func OpenWithWAL(p storage.Pager, w *storage.WAL, metaPage storage.PageID, opts Options) (*Tree, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	t := &Tree{
		opts:     opts,
		codec:    opts.codec(),
		layout:   nodeLayout{codec: opts.codec(), cardStats: opts.CardStats, pageSize: opts.PageSize, maxPages: opts.MaxNodePages},
		pool:     storage.NewBufferPool(p, opts.BufferPages),
		ncache:   newTreeNodeCache(opts),
		metaPage: metaPage,
	}
	if w != nil {
		if w.PageSize() != opts.PageSize {
			return nil, fmt.Errorf("core: WAL page size %d != options page size %d", w.PageSize(), opts.PageSize)
		}
		t.pool.AttachWAL(w)
	}
	page, err := t.pool.Get(metaPage)
	if err != nil {
		return nil, err
	}
	defer t.pool.Unpin(metaPage, false)
	if err := t.decodeMeta(page); err != nil {
		return nil, err
	}
	t.snap.Store(&treeSnapshot{root: t.root, height: t.height, count: t.count, epoch: 1})
	return t, nil
}

func (t *Tree) encodeMeta(page []byte) {
	binary.LittleEndian.PutUint32(page[0:], treeMagic)
	binary.LittleEndian.PutUint32(page[4:], uint32(t.root))
	binary.LittleEndian.PutUint32(page[8:], uint32(t.height))
	binary.LittleEndian.PutUint64(page[12:], uint64(t.count))
	binary.LittleEndian.PutUint32(page[20:], uint32(t.opts.SignatureLength))
	var flags uint32
	if t.opts.Compress {
		flags |= metaCompress
	}
	if t.opts.CardStats {
		flags |= metaCardStats
	}
	binary.LittleEndian.PutUint32(page[24:], flags)
}

func (t *Tree) decodeMeta(page []byte) error {
	if len(page) < metaSize {
		return fmt.Errorf("core: meta page too small")
	}
	if binary.LittleEndian.Uint32(page[0:]) != treeMagic {
		return fmt.Errorf("core: not an SG-tree meta page")
	}
	t.root = storage.PageID(binary.LittleEndian.Uint32(page[4:]))
	t.height = int(binary.LittleEndian.Uint32(page[8:]))
	t.count = int(binary.LittleEndian.Uint64(page[12:]))
	gotLen := int(binary.LittleEndian.Uint32(page[20:]))
	if gotLen != t.opts.SignatureLength {
		return fmt.Errorf("core: stored signature length %d != configured %d", gotLen, t.opts.SignatureLength)
	}
	flags := binary.LittleEndian.Uint32(page[24:])
	if (flags&metaCompress != 0) != t.opts.Compress {
		return fmt.Errorf("core: stored compression flag differs from configured options")
	}
	if (flags&metaCardStats != 0) != t.opts.CardStats {
		return fmt.Errorf("core: stored cardinality-stats flag differs from configured options")
	}
	return nil
}

// flushMeta writes the meta fields through the pool.
func (t *Tree) flushMeta() error {
	page, err := t.pool.Get(t.metaPage)
	if err != nil {
		return err
	}
	t.encodeMeta(page)
	t.pool.Unpin(t.metaPage, true)
	return nil
}

// Close flushes all dirty state to the pager. It does not close the pager
// (the caller owns it when using NewWithPager; New's in-memory pager needs
// no closing).
func (t *Tree) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.syncLocked()
}

// Sync flushes all dirty state to the pager. With a WAL attached this is
// the tree's commit point: the updates since the previous Sync become
// durable atomically — after a crash, recovery restores either all of them
// or none.
func (t *Tree) Sync() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.syncLocked()
}

func (t *Tree) syncLocked() error {
	if err := t.reclaimSnapshots(); err != nil {
		return err
	}
	if err := t.flushMeta(); err != nil {
		return err
	}
	return t.pool.FlushAll()
}

// runUpdate executes one mutating operation as a copy-on-write
// transaction. Reclaim runs first — before BeginUndo — so that deferred
// frees from fully-unpinned old epochs land below the undo scope's free
// mark and survive a rollback. The body then builds the new tree version
// out of fresh pages only (writeNode relocates every published node it
// touches), so published pages a pinned reader can see are never modified:
// the undo scope needs no pre-image capture (BeginUndo(false)), and a
// failed update rolls back by simply freeing the scope's fresh pages and
// restoring the in-memory root/height/count. On success the new version is
// published atomically and the replaced pages are attached to the retiring
// snapshot for deferred reclamation.
func (t *Tree) runUpdate(body func() error) error {
	if err := t.reclaimSnapshots(); err != nil {
		return err
	}
	t.pool.BeginUndo(false)
	t.cowFresh = make(map[storage.PageID]bool)
	t.cowFrees = nil
	root, height, count := t.root, t.height, t.count
	if err := body(); err != nil {
		t.root, t.height, t.count = root, height, count
		t.reinsertQueue = nil
		t.cowFresh = nil
		t.cowFrees = nil
		// Rollback frees the scope's fresh pages without passing through
		// freeNode; none of them were ever cached (only published pages
		// are), but bump the cache epoch as defense in depth so no decode
		// from the failed update can survive.
		if t.ncache != nil {
			t.ncache.invalidateAll()
		}
		if rbErr := t.pool.RollbackUndo(); rbErr != nil {
			return fmt.Errorf("%w (undo rollback also failed: %v)", err, rbErr)
		}
		return err
	}
	t.publishSnapshot()
	if err := t.pool.CommitUndo(); err != nil {
		return err
	}
	// Opportunistic reclaim: with no readers pinned (the common idle case)
	// the pages this update replaced return to the pager right away, so
	// space usage matches the in-place behavior. Errors are not surfaced —
	// the update itself committed, and an unreclaimed snapshot keeps its
	// remaining frees queued for the next reclaim point to retry.
	_ = t.reclaimSnapshots()
	return nil
}

// Options returns the tree's configuration (defaults applied).
func (t *Tree) Options() Options { return t.opts }

// Len returns the number of indexed signatures.
func (t *Tree) Len() int {
	return t.snap.Load().count
}

// Height returns the number of levels (0 when empty, 1 when the root is a leaf).
func (t *Tree) Height() int {
	return t.snap.Load().height
}

// Pool exposes the buffer pool for I/O accounting by benchmarks.
func (t *Tree) Pool() *storage.BufferPool { return t.pool }

// DropCaches flushes dirty pages and then empties both read caches — the
// decoded-node cache and the buffer pool — so the next query starts
// entirely cold. The paper's I/O experiments call this between queries;
// clearing only the buffer pool would leave decoded nodes behind and
// report near-zero page misses.
//
// DropCaches requires quiescence on the buffer-pool side: pool.Clear
// fails if any page is still pinned, which includes pages held by
// in-flight lock-free queries. Call it between query batches, not
// concurrently with them.
func (t *Tree) DropCaches() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.reclaimSnapshots(); err != nil {
		return err
	}
	if t.ncache != nil {
		t.ncache.invalidateAll()
	}
	return t.pool.Clear()
}

// Refresh re-reads the meta page from the underlying store and publishes
// its root/height/count as a fresh snapshot, after emptying both read
// caches. It exists for replication followers: ApplyRedo rewrites the page
// file beneath the tree, so the buffer pool, decoded-node cache and
// current snapshot all hold the pre-apply version until Refresh installs
// the shipped one. Like DropCaches it requires quiescence — pool.Clear
// fails while any in-flight query still pins pages — so a follower must
// fence queries against apply (e.g. with an RWMutex) before calling it.
func (t *Tree) Refresh() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.reclaimSnapshots(); err != nil {
		return err
	}
	if t.ncache != nil {
		t.ncache.invalidateAll()
	}
	if err := t.pool.Clear(); err != nil {
		return err
	}
	page, err := t.pool.Get(t.metaPage)
	if err != nil {
		return err
	}
	derr := t.decodeMeta(page)
	t.pool.Unpin(t.metaPage, false)
	if derr != nil {
		return derr
	}
	t.publishSnapshot()
	return nil
}

// --- node I/O through the buffer pool ---
//
// A node occupies a primary page plus up to MaxNodePages-1 continuation
// pages chained through 4-byte next pointers; reading an L-page node costs
// L page accesses, which is how multipage nodes show up in the I/O metric.

// readNodeCached is the query-path node read: it consults the decoded-node
// cache before falling back to readNode, and publishes fresh decodes. The
// returned node may be shared by concurrent queries and MUST NOT be
// mutated — update paths use readNode directly, which always hands out a
// private copy they may modify in place.
func (t *Tree) readNodeCached(id storage.PageID) (*node, error) {
	if t.ncache == nil {
		return t.readNode(id)
	}
	if n := t.ncache.get(id); n != nil {
		return n, nil
	}
	n, err := t.readNode(id)
	if err != nil {
		return nil, err
	}
	n.cacheAreas()
	t.ncache.put(id, n)
	return n, nil
}

// readNode assembles the node's logical byte string from its page chain
// and decodes it.
func (t *Tree) readNode(id storage.PageID) (*node, error) {
	page, err := t.pool.Get(id)
	if err != nil {
		return nil, err
	}
	next := storage.PageID(binary.LittleEndian.Uint32(page[nodeNextOff:]))
	var buf []byte
	if next == storage.InvalidPage {
		// Common case: single-page node, decode straight from the frame.
		n, err := t.layout.decodeBuf(id, page)
		t.pool.Unpin(id, false)
		return n, err
	}
	buf = append(buf, page...)
	t.pool.Unpin(id, false)
	var cont []storage.PageID
	for next != storage.InvalidPage {
		cid := next
		cpage, err := t.pool.Get(cid)
		if err != nil {
			return nil, err
		}
		next = storage.PageID(binary.LittleEndian.Uint32(cpage[:contHeaderSize]))
		buf = append(buf, cpage[contHeaderSize:]...)
		t.pool.Unpin(cid, false)
		cont = append(cont, cid)
		if len(cont) > t.opts.MaxNodePages {
			return nil, fmt.Errorf("core: node %d chain exceeds MaxNodePages %d", id, t.opts.MaxNodePages)
		}
	}
	n, err := t.layout.decodeBuf(id, buf)
	if err != nil {
		return nil, err
	}
	n.cont = cont
	return n, nil
}

// writeNode distributes the node's logical byte string over its page
// chain, growing or trimming continuation pages as the node's size moved.
//
// Inside a copy-on-write update (cowFresh non-nil) a node whose pages
// belong to a published snapshot is first relocated: its old primary and
// continuation pages are deferred to cowFrees — pinned readers keep
// traversing them unchanged — and the new bytes land on fresh pages. The
// caller observes the relocation through n.id; parent links are
// recomputed from it (parentEntry) or patched explicitly by the
// insert/delete paths.
func (t *Tree) writeNode(n *node) error {
	if t.cowFresh != nil {
		if !t.cowFresh[n.id] {
			t.cowFrees = append(t.cowFrees, n.id)
			t.cowFrees = append(t.cowFrees, n.cont...)
			n.cont = nil
			id, page, err := t.pool.NewPage()
			if err != nil {
				return err
			}
			_ = page
			t.pool.Unpin(id, true)
			t.cowFresh[id] = true
			n.id = id
		}
	} else if t.ncache != nil {
		// Legacy in-place path (no COW transaction running): the page's
		// bytes are about to change, so drop any cached decode first.
		t.ncache.invalidate(n.id)
	}
	buf, err := t.layout.encodeBuf(n)
	if err != nil {
		return err
	}
	if len(buf) > t.layout.budget() {
		return fmt.Errorf("core: node %d overflows node budget: %d > %d bytes", n.id, len(buf), t.layout.budget())
	}
	// How many continuation pages does this size need?
	needed := 0
	if len(buf) > t.opts.PageSize {
		rest := len(buf) - t.opts.PageSize
		chunk := t.opts.PageSize - contHeaderSize
		needed = (rest + chunk - 1) / chunk
	}
	// Grow or trim the chain.
	for len(n.cont) < needed {
		id, page, err := t.pool.NewPage()
		if err != nil {
			return err
		}
		_ = page
		t.pool.Unpin(id, true)
		n.cont = append(n.cont, id)
	}
	for len(n.cont) > needed {
		last := n.cont[len(n.cont)-1]
		if err := t.pool.Discard(last); err != nil {
			return err
		}
		n.cont = n.cont[:len(n.cont)-1]
	}
	// Primary page: header chunk with the chain pointer patched in.
	primary, err := t.pool.Get(n.id)
	if err != nil {
		return err
	}
	take := len(buf)
	if take > t.opts.PageSize {
		take = t.opts.PageSize
	}
	copy(primary, buf[:take])
	for i := take; i < t.opts.PageSize; i++ {
		primary[i] = 0
	}
	var firstCont storage.PageID
	if needed > 0 {
		firstCont = n.cont[0]
	}
	binary.LittleEndian.PutUint32(primary[nodeNextOff:], uint32(firstCont))
	t.pool.Unpin(n.id, true)
	// Continuation pages.
	pos := take
	for ci := 0; ci < needed; ci++ {
		cid := n.cont[ci]
		cpage, err := t.pool.Get(cid)
		if err != nil {
			return err
		}
		var next storage.PageID
		if ci+1 < needed {
			next = n.cont[ci+1]
		}
		binary.LittleEndian.PutUint32(cpage[:contHeaderSize], uint32(next))
		take := len(buf) - pos
		if max := t.opts.PageSize - contHeaderSize; take > max {
			take = max
		}
		copy(cpage[contHeaderSize:], buf[pos:pos+take])
		for i := contHeaderSize + take; i < t.opts.PageSize; i++ {
			cpage[i] = 0
		}
		pos += take
		t.pool.Unpin(cid, true)
	}
	return nil
}

func (t *Tree) allocNode(leaf bool, level int) (*node, error) {
	id, page, err := t.pool.NewPage()
	if err != nil {
		return nil, err
	}
	_ = page
	t.pool.Unpin(id, true)
	if t.cowFresh != nil {
		t.cowFresh[id] = true
	}
	n := &node{id: id, leaf: leaf, level: level}
	return n, t.writeNode(n)
}

// freeNode releases the node's primary page and its continuation chain.
// Under copy-on-write, pages of a published node are deferred to cowFrees
// (a pinned reader may still reach them); pages fresh to this update were
// never visible to any reader and are discarded immediately. A fresh
// node's continuation pages are always fresh too — writeNode relocates a
// published node's whole chain at once.
func (t *Tree) freeNode(n *node) error {
	if t.cowFresh != nil && !t.cowFresh[n.id] {
		t.cowFrees = append(t.cowFrees, n.id)
		t.cowFrees = append(t.cowFrees, n.cont...)
		n.cont = nil
		return nil
	}
	if t.cowFresh == nil && t.ncache != nil {
		t.ncache.invalidate(n.id)
	}
	for _, cid := range n.cont {
		if err := t.pool.Discard(cid); err != nil {
			return err
		}
	}
	n.cont = nil
	return t.pool.Discard(n.id)
}

// --- insertion (Figure 3) ---

// Insert adds a ⟨signature, tid⟩ pair to the tree. The signature is cloned,
// so the caller may reuse it.
func (t *Tree) Insert(sig signature.Signature, tid dataset.TID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.checkDataSignature(sig); err != nil {
		return err
	}
	return t.runUpdate(func() error {
		e := entry{sig: sig.Clone(), tid: tid}
		if t.opts.ForcedReinsert {
			t.reinsertActive = map[int]bool{}
			defer func() { t.reinsertActive = nil }()
		}
		if err := t.insertEntry(e, 0); err != nil {
			return err
		}
		if err := t.drainReinserts(); err != nil {
			return err
		}
		t.count++
		return nil
	})
}

func (t *Tree) checkDataSignature(sig signature.Signature) error {
	if sig.Len() != t.opts.SignatureLength {
		return fmt.Errorf("core: signature length %d != tree length %d", sig.Len(), t.opts.SignatureLength)
	}
	if fc := t.opts.FixedCardinality; fc > 0 && sig.Area() != fc {
		return fmt.Errorf("core: signature area %d violates fixed cardinality %d", sig.Area(), fc)
	}
	return nil
}

// insertEntry inserts e into a node at targetLevel, growing the tree as
// needed. Caller holds the lock and maintains count.
func (t *Tree) insertEntry(e entry, targetLevel int) error {
	if targetLevel == 0 {
		// Data entries carry their own cardinality as a degenerate range,
		// so ancestors can maintain [lo, hi] without re-deriving it.
		a := e.sig.Area()
		e.lo, e.hi = a, a
	}
	if t.root == storage.InvalidPage {
		if targetLevel != 0 {
			return fmt.Errorf("core: internal: reinsertion at level %d into an empty tree", targetLevel)
		}
		root, err := t.allocNode(true, 0)
		if err != nil {
			return err
		}
		root.entries = append(root.entries, e)
		if err := t.writeNode(root); err != nil {
			return err
		}
		t.root = root.id
		t.height = 1
		return nil
	}
	rootNode, err := t.readNode(t.root)
	if err != nil {
		return err
	}
	if targetLevel > rootNode.level {
		return fmt.Errorf("core: internal: reinsertion level %d above root level %d", targetLevel, rootNode.level)
	}
	right, err := t.insertRec(rootNode, e, targetLevel)
	if err != nil {
		return err
	}
	if right == nil {
		// Copy-on-write may have relocated the root node; republish its id.
		t.root = rootNode.id
		return nil
	}
	// Root split: grow a new root with two entries.
	newRoot, err := t.allocNode(false, rootNode.level+1)
	if err != nil {
		return err
	}
	newRoot.entries = []entry{
		rootNode.parentEntry(t.opts.SignatureLength),
		right.parentEntry(t.opts.SignatureLength),
	}
	if err := t.writeNode(newRoot); err != nil {
		return err
	}
	t.root = newRoot.id
	t.height++
	return nil
}

// insertRec implements the generic balanced-tree insertion of Figure 3.
// It returns the freshly created sibling if n was split, nil otherwise.
func (t *Tree) insertRec(n *node, e entry, targetLevel int) (*node, error) {
	if n.level == targetLevel {
		n.entries = append(n.entries, e)
		if t.overflows(n) {
			if ok, err := t.maybeForcedReinsert(n); err != nil {
				return nil, err
			} else if ok {
				return nil, nil
			}
			return t.splitNode(n)
		}
		return nil, t.writeNode(n)
	}
	idx := t.chooseSubtree(n, e.sig)
	child, err := t.readNode(n.entries[idx].child)
	if err != nil {
		return nil, err
	}
	right, err := t.insertRec(child, e, targetLevel)
	if err != nil {
		return nil, err
	}
	if right == nil {
		// No split below: the chosen entry just absorbs the new signature
		// and widens its cardinality range. Forced reinsertion can have
		// *shrunk* the child, so in that mode the cover is recomputed
		// exactly instead of merely enlarged. With compression the grown
		// cover can encode to more bytes, so the node may overflow the
		// page even without gaining an entry.
		if t.opts.ForcedReinsert {
			n.entries[idx] = child.parentEntry(t.opts.SignatureLength)
			n.dropSlab()
		} else {
			// Merge writes through the entry view into the slab row, so
			// the slab stays coherent on this path.
			n.entries[idx].sig.Merge(e.sig)
			if e.lo < n.entries[idx].lo {
				n.entries[idx].lo = e.lo
			}
			if e.hi > n.entries[idx].hi {
				n.entries[idx].hi = e.hi
			}
			// The recursive writeNode may have relocated the child
			// (copy-on-write); the entry must track its new id.
			n.entries[idx].child = child.id
		}
		if t.overflows(n) {
			return t.splitNode(n)
		}
		return nil, t.writeNode(n)
	}
	// The child split: recompute its cover and add an entry for the sibling.
	n.entries[idx] = child.parentEntry(t.opts.SignatureLength)
	n.entries = append(n.entries, right.parentEntry(t.opts.SignatureLength))
	n.dropSlab()
	if t.overflows(n) {
		return t.splitNode(n)
	}
	return nil, t.writeNode(n)
}

// chooseSubtree picks the entry of directory node n to insert sig under,
// per Section 3.1. Three cases: a unique covering entry is taken directly;
// among several covering entries the one with minimum area wins (it is the
// most specific); with no covering entry, the configured heuristic decides.
func (t *Tree) chooseSubtree(n *node, sig signature.Signature) int {
	best := -1
	bestArea := 0
	for i := range n.entries {
		if n.entries[i].sig.Covers(sig) {
			a := n.entries[i].sig.Area()
			if best == -1 || a < bestArea {
				best, bestArea = i, a
			}
		}
	}
	if best >= 0 {
		return best
	}
	switch t.opts.Choose {
	case MinOverlap:
		return chooseMinOverlap(n, sig)
	default:
		return chooseMinEnlargement(n, sig)
	}
}

// chooseMinEnlargement picks the entry whose area grows least when
// absorbing sig; ties break on smaller area.
func chooseMinEnlargement(n *node, sig signature.Signature) int {
	best := 0
	bestEnl := n.entries[0].sig.Enlargement(sig)
	bestArea := n.entries[0].sig.Area()
	for i := 1; i < len(n.entries); i++ {
		enl := n.entries[i].sig.Enlargement(sig)
		area := n.entries[i].sig.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// chooseMinOverlap picks the entry which, once extended with sig, has the
// minimum overlap increase with the remaining entries of the node. Ties
// break on enlargement, then area. This is the costlier alternative the
// paper evaluated: O(|node|²) bitmap intersections per level.
func chooseMinOverlap(n *node, sig signature.Signature) int {
	best := 0
	bestInc, bestEnl, bestArea := -1, 0, 0
	for i := range n.entries {
		extended := n.entries[i].sig.Union(sig)
		inc := 0
		for j := range n.entries {
			if j == i {
				continue
			}
			inc += extended.Intersect(n.entries[j].sig) - n.entries[i].sig.Intersect(n.entries[j].sig)
		}
		enl := n.entries[i].sig.Enlargement(sig)
		area := n.entries[i].sig.Area()
		if bestInc == -1 || inc < bestInc ||
			(inc == bestInc && (enl < bestEnl || (enl == bestEnl && area < bestArea))) {
			best, bestInc, bestEnl, bestArea = i, inc, enl, area
		}
	}
	return best
}
