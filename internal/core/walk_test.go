package core

import (
	"testing"

	"sgtree/internal/dataset"
	"sgtree/internal/gen"
	"sgtree/internal/signature"
)

func TestWalkVisitsEverything(t *testing.T) {
	d := questData(t, 300, 101)
	tr := buildTree(t, d, testOptions(200))
	seen := map[dataset.TID]bool{}
	err := tr.Walk(func(sig signature.Signature, tid dataset.TID) bool {
		if seen[tid] {
			t.Fatalf("tid %d visited twice", tid)
		}
		seen[tid] = true
		m := signature.NewDirectMapper(200)
		if !sig.Equal(signature.FromItems(m, d.Tx[tid]).Bitset) {
			t.Fatalf("tid %d signature mismatch", tid)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 300 {
		t.Fatalf("visited %d of 300", len(seen))
	}
}

func TestWalkEarlyStop(t *testing.T) {
	d := questData(t, 200, 103)
	tr := buildTree(t, d, testOptions(200))
	n := 0
	err := tr.Walk(func(signature.Signature, dataset.TID) bool {
		n++
		return n < 10
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("visited %d, want 10", n)
	}
	// Empty tree walk is a no-op.
	if err := mustTree(t, testOptions(64)).Walk(func(signature.Signature, dataset.TID) bool {
		t.Fatal("callback on empty tree")
		return true
	}); err != nil {
		t.Fatal(err)
	}
}

func TestExportBulkLoadRoundTrip(t *testing.T) {
	d := questData(t, 400, 107)
	tr := buildTree(t, d, testOptions(200))
	items, err := tr.Export()
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 400 {
		t.Fatalf("exported %d", len(items))
	}
	// Rebuild into a fresh tree with different options (larger fanout).
	opts := testOptions(200)
	opts.MaxNodeEntries = 16
	tr2 := mustTree(t, opts)
	if err := tr2.BulkLoad(items); err != nil {
		t.Fatal(err)
	}
	if tr2.Len() != 400 {
		t.Fatalf("rebuilt Len = %d", tr2.Len())
	}
	if err := tr2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Same answers.
	q := sigOf(t, 200, d.Tx[11])
	a, _, err := tr.KNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := tr2.KNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Dist != b[i].Dist {
			t.Fatalf("rank %d: %v vs %v", i, a[i].Dist, b[i].Dist)
		}
	}
}

func TestCompactRestoresDensity(t *testing.T) {
	d := questData(t, 600, 113)
	tr := buildTree(t, d, testOptions(200))
	// Delete half to fragment the tree.
	m := signature.NewDirectMapper(200)
	for i := 0; i < 300; i++ {
		if found, err := tr.Delete(signature.FromItems(m, d.Tx[i]), dataset.TID(i)); err != nil || !found {
			t.Fatalf("delete %d: %v %v", i, found, err)
		}
	}
	before, err := tr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Compact(); err != nil {
		t.Fatal(err)
	}
	after, err := tr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 300 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if after.Nodes > before.Nodes {
		t.Errorf("compact grew the tree: %d -> %d nodes", before.Nodes, after.Nodes)
	}
	// Content preserved.
	for _, i := range []int{300, 450, 599} {
		got, _, err := tr.Exact(signature.FromItems(m, d.Tx[i]))
		if err != nil {
			t.Fatal(err)
		}
		ok := false
		for _, id := range got {
			if id == dataset.TID(i) {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("tid %d lost by Compact", i)
		}
	}
}

func TestCosineMetricTree(t *testing.T) {
	d := questData(t, 300, 109)
	opts := testOptions(200)
	opts.Metric = signature.Cosine
	tr := buildTree(t, d, opts)
	q := d.Tx[42]
	qsig := sigOf(t, 200, q)
	got, _, err := tr.KNN(qsig, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Oracle under cosine distance.
	m := signature.NewDirectMapper(200)
	dists := make([]float64, d.Len())
	for i, tx := range d.Tx {
		dists[i] = 1 - qsig.Cosine(signature.FromItems(m, tx))
	}
	for i := 0; i < 5; i++ {
		min := i
		for j := i; j < len(dists); j++ {
			if dists[j] < dists[min] {
				min = j
			}
		}
		dists[i], dists[min] = dists[min], dists[i]
		if diff := got[i].Dist - dists[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("rank %d: %v vs %v", i, got[i].Dist, dists[i])
		}
	}
}

func TestJoinAcrossDifferentHeights(t *testing.T) {
	// A tall tree joined with a root-leaf tree exercises the leaf/directory
	// mismatch branches of the recursive join.
	mkCensus := func(n int) (*Tree, *dataset.Dataset) {
		c, err := gen.NewCensus(gen.CensusConfig{NumTuples: n, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		d := c.Generate()
		opts := Options{
			SignatureLength:  525,
			PageSize:         2048,
			MaxNodeEntries:   8,
			Compress:         true,
			FixedCardinality: 36,
		}
		return buildTree(t, d, opts), d
	}
	big, dBig := mkCensus(150)
	small, dSmall := mkCensus(5)
	if big.Height() <= small.Height() {
		t.Skipf("heights not distinct: %d vs %d", big.Height(), small.Height())
	}
	eps := 10.0
	for _, pair := range [][2]*Tree{{big, small}, {small, big}} {
		got, _, err := pair[0].SimilarityJoin(pair[1], eps)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, a := range dBig.Tx {
			for _, b := range dSmall.Tx {
				if float64(a.Hamming(b)) <= eps {
					want++
				}
			}
		}
		if len(got) != want {
			t.Fatalf("join %d vs %d pairs", len(got), want)
		}
	}
}
