package core

import (
	"context"
	"sort"
	"testing"

	"sgtree/internal/dataset"
	"sgtree/internal/signature"
)

// TestNNIteratorCloseIdempotent pins the Close contract: Close (and the
// implicit Close on exhaustion) releases the snapshot pin exactly once, no
// matter how many times it runs, so a double Close can never underflow the
// pin count and let a writer reclaim pages under another reader.
func TestNNIteratorCloseIdempotent(t *testing.T) {
	d := questData(t, 120, 31)
	tr := buildTree(t, d, testOptions(200))
	q := sigOf(t, 200, d.Tx[3])

	// Explicit double (and triple) Close after a partial drain.
	it, err := tr.NewNNIterator(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := it.Next(); err != nil || !ok {
		t.Fatalf("first Next: ok=%v err=%v", ok, err)
	}
	it.Close()
	it.Close()
	it.Close()
	if pins := tr.snap.Load().pins.Load(); pins != 0 {
		t.Fatalf("pins = %d after triple Close, want 0", pins)
	}
	if _, ok, err := it.Next(); ok || err != nil {
		t.Fatalf("Next after Close: ok=%v err=%v, want exhausted", ok, err)
	}
	if st := it.Stats(); st.NodesAccessed == 0 {
		t.Fatal("Stats unreadable after Close")
	}

	// Exhaustion auto-closes; a later explicit Close must still be safe.
	it2, err := tr.NewNNIterator(q)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, ok, err := it2.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != tr.Len() {
		t.Fatalf("drained %d results, want %d", n, tr.Len())
	}
	it2.Close()
	if pins := tr.snap.Load().pins.Load(); pins != 0 {
		t.Fatalf("pins = %d after drain+Close, want 0", pins)
	}

	// The released snapshot must still be reclaimable: an update after the
	// double Close publishes and reclaims without error.
	if err := tr.Insert(sigOf(t, 200, d.Tx[5]), dataset.TID(9999)); err != nil {
		t.Fatal(err)
	}
}

// shardByHand splits d round-robin across n trees and returns both the
// shards and a single unsharded reference tree.
func shardByHand(t *testing.T, d *dataset.Dataset, n int) (shards []*Tree, whole *Tree) {
	t.Helper()
	m := signature.NewDirectMapper(d.Universe)
	whole = mustTree(t, testOptions(200))
	for i := 0; i < n; i++ {
		shards = append(shards, mustTree(t, testOptions(200)))
	}
	for i, tx := range d.Tx {
		s := signature.FromItems(m, tx)
		if err := whole.Insert(s, dataset.TID(i)); err != nil {
			t.Fatal(err)
		}
		if err := shards[i%n].Insert(s, dataset.TID(i)); err != nil {
			t.Fatal(err)
		}
	}
	return shards, whole
}

func TestShardedQueriesMatchUnsharded(t *testing.T) {
	d := questData(t, 400, 17)
	shards, whole := shardByHand(t, d, 3)
	ctx := context.Background()

	for qi := 0; qi < 25; qi++ {
		q := sigOf(t, 200, d.Tx[qi*7%len(d.Tx)])

		// kNN: distance multisets must agree (ids can differ only within a
		// tie at the k-th distance, which both sides break by TID here
		// because the merge orders by (dist, TID)).
		want, _, err := whole.KNNContext(ctx, q, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := ShardedKNN(ctx, shards, q, 10, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: sharded kNN %d results, want %d", qi, len(got), len(want))
		}
		for i := range got {
			if got[i].Dist != want[i].Dist {
				t.Fatalf("query %d rank %d: dist %g, want %g", qi, i, got[i].Dist, want[i].Dist)
			}
		}

		// Range: exact result sets in identical order.
		wantR, _, err := whole.RangeSearchContext(ctx, q, 6)
		if err != nil {
			t.Fatal(err)
		}
		gotR, _, err := ShardedRange(ctx, shards, q, 6, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotR) != len(wantR) {
			t.Fatalf("query %d: sharded range %d results, want %d", qi, len(gotR), len(wantR))
		}
		for i := range gotR {
			if gotR[i] != wantR[i] {
				t.Fatalf("query %d range rank %d: %+v, want %+v", qi, i, gotR[i], wantR[i])
			}
		}

		// Containment: identical id sets (the unsharded tree reports
		// traversal order; the sharded merge sorts, so compare sorted).
		wantC, _, err := whole.ContainmentContext(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(wantC, func(a, b int) bool { return wantC[a] < wantC[b] })
		gotC, _, err := ShardedContainment(ctx, shards, q, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotC) != len(wantC) {
			t.Fatalf("query %d: sharded containment %d ids, want %d", qi, len(gotC), len(wantC))
		}
		for i := range gotC {
			if gotC[i] != wantC[i] {
				t.Fatalf("query %d containment %d: id %d, want %d", qi, i, gotC[i], wantC[i])
			}
		}
	}
}

func TestMergeHeapDeterministicUnderTies(t *testing.T) {
	// Two shards return candidates tying at the k-th distance; the merge
	// must keep the lowest TIDs regardless of shard arrival order.
	a := []Neighbor{{TID: 5, Dist: 1}, {TID: 9, Dist: 2}}
	b := []Neighbor{{TID: 2, Dist: 2}, {TID: 7, Dist: 2}}
	for _, order := range [][][]Neighbor{{a, b}, {b, a}} {
		var h mergeHeap
		for _, res := range order {
			for _, nb := range res {
				h.offer(nb, 2)
			}
		}
		out := []Neighbor(h)
		sortNeighbors(out)
		if out[0] != (Neighbor{TID: 5, Dist: 1}) || out[1] != (Neighbor{TID: 2, Dist: 2}) {
			t.Fatalf("merge under ties = %+v", out)
		}
	}
}
