package core

import (
	"math/rand"
	"testing"

	"sgtree/internal/dataset"
	"sgtree/internal/signature"
)

// TestCompressedMergeOverflowRegression reproduces a bug where merging a
// new signature into an existing directory entry grew the entry's sparse
// encoding past the page size without triggering a split (compressed
// trees only: dense encodings have constant size). The size cap must bind
// before the entry-count cap for the bug to fire, so the page is small
// relative to MaxNodeEntries.
func TestCompressedMergeOverflowRegression(t *testing.T) {
	opts := Options{
		SignatureLength: 300,
		PageSize:        1024,
		BufferPages:     64,
		MaxNodeEntries:  256, // never binds: the page size must do the work
		Compress:        true,
	}
	tr := mustTree(t, opts)
	r := rand.New(rand.NewSource(5))
	m := signature.NewDirectMapper(300)
	for i := 0; i < 4000; i++ {
		// Sets with a clustered core plus far-flung noise, so directory
		// covers keep absorbing new bits as the tree grows.
		base := (i % 20) * 15
		items := []int{base, base + 1, base + 2}
		for j := 0; j < 3; j++ {
			items = append(items, r.Intn(300))
		}
		tx := dataset.NewTransaction(items...)
		if err := tr.Insert(signature.FromItems(m, tx), dataset.TID(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
