package bitset

import (
	"math"
	"math/rand"
	"testing"
)

// Differential harness for the counting kernels. The reference oracle below
// counts bit by bit — no bits.OnesCount64, no word tricks — so it shares no
// code, and therefore no bugs, with any implementation under test. Every
// registered kernelImpl (the unrolled Go loops always; the assembly
// whenever the CPU supports it, regardless of SGTREE_NO_ASM) is checked
// against the oracle on identical inputs: exhaustive tail-length sweeps,
// handcrafted SIMD-hostile patterns, misaligned views, and fuzzed inputs
// (kernels_fuzz_test.go).

// --- the naive reference oracle ---

func naiveCount(a []uint64) int {
	c := 0
	for _, w := range a {
		for b := 0; b < 64; b++ {
			if w>>uint(b)&1 == 1 {
				c++
			}
		}
	}
	return c
}

func naiveCombine(a, b []uint64, op func(x, y uint64) uint64) int {
	c := 0
	for i := range b {
		c += naiveCount([]uint64{op(a[i], b[i])})
	}
	return c
}

func naiveAndCount(a, b []uint64) int {
	return naiveCombine(a, b, func(x, y uint64) uint64 { return x & y })
}

func naiveAndNotCount(a, b []uint64) int {
	return naiveCombine(a, b, func(x, y uint64) uint64 { return x &^ y })
}

func naiveOrCount(a, b []uint64) int {
	return naiveCombine(a, b, func(x, y uint64) uint64 { return x | y })
}

func naiveXorCount(a, b []uint64) int {
	return naiveCombine(a, b, func(x, y uint64) uint64 { return x ^ y })
}

// --- contract checkers ---

// checkPairwise runs every registered implementation of the exact pairwise
// kernels against the oracle.
func checkPairwise(t *testing.T, label string, a, b []uint64) {
	t.Helper()
	wantCount := naiveCount(a)
	wantAnd := naiveAndCount(a, b)
	wantAndNot := naiveAndNotCount(a, b)
	wantOr := naiveOrCount(a, b)
	wantXor := naiveXorCount(a, b)
	for _, impl := range kernelImpls {
		if got := impl.count(a); got != wantCount {
			t.Errorf("%s: %s count = %d, oracle %d", label, impl.name, got, wantCount)
		}
		if got := impl.andCount(a, b); got != wantAnd {
			t.Errorf("%s: %s andCount = %d, oracle %d", label, impl.name, got, wantAnd)
		}
		if got := impl.andNotCount(a, b); got != wantAndNot {
			t.Errorf("%s: %s andNotCount = %d, oracle %d", label, impl.name, got, wantAndNot)
		}
		if got := impl.orCount(a, b); got != wantOr {
			t.Errorf("%s: %s orCount = %d, oracle %d", label, impl.name, got, wantOr)
		}
		if got := impl.xorCount(a, b); got != wantXor {
			t.Errorf("%s: %s xorCount = %d, oracle %d", label, impl.name, got, wantXor)
		}
	}
}

// checkAtLeast verifies the *AtLeast clamp contract for one result: when
// the exact count is below limit the kernel must return it exactly; once
// the limit is reachable the result may stop anywhere in [limit, exact].
// Kernels are only ever called with limit > 0 (the Bitset methods resolve
// limit <= 0 first — TestAtLeastLimitZero).
func checkAtLeast(t *testing.T, label, implName string, got, exact, limit int) {
	t.Helper()
	if exact >= limit {
		if got < limit || got > exact {
			t.Errorf("%s: %s atLeast(limit=%d) = %d, want in [%d, %d]", label, implName, limit, got, limit, exact)
		}
	} else if got != exact {
		t.Errorf("%s: %s atLeast(limit=%d) = %d, want exact %d", label, implName, limit, got, exact)
	}
}

// atLeastLimits returns the limit values worth probing for a given exact
// count: the contract boundaries and the degenerate extremes.
func atLeastLimits(exact int) []int {
	return []int{1, exact - 1, exact, exact + 1, exact * 2, math.MaxInt}
}

func checkAtLeastKernels(t *testing.T, label string, a, b []uint64) {
	t.Helper()
	exactAndNot := naiveAndNotCount(a, b)
	exactXor := naiveXorCount(a, b)
	for _, impl := range kernelImpls {
		for _, limit := range atLeastLimits(exactAndNot) {
			if limit <= 0 {
				continue
			}
			got := impl.andNotCountAtLeast(a, b, limit)
			checkAtLeast(t, label, impl.name+"/andNot", got, exactAndNot, limit)
		}
		for _, limit := range atLeastLimits(exactXor) {
			if limit <= 0 {
				continue
			}
			got := impl.xorCountAtLeast(a, b, limit)
			checkAtLeast(t, label, impl.name+"/xor", got, exactXor, limit)
		}
	}
}

// --- input generators ---

// patterns returns the SIMD-hostile word patterns for a given word count:
// all zeros, all ones, a single bit in the first word, a single bit in the
// last word, alternating bits, and a deterministic random fill.
func patterns(words int, rng *rand.Rand) [][]uint64 {
	mk := func(fill func(i int) uint64) []uint64 {
		w := make([]uint64, words)
		for i := range w {
			w[i] = fill(i)
		}
		return w
	}
	out := [][]uint64{
		mk(func(int) uint64 { return 0 }),
		mk(func(int) uint64 { return ^uint64(0) }),
		mk(func(int) uint64 { return 0x5555555555555555 }),
		mk(func(int) uint64 { return rng.Uint64() }),
	}
	if words > 0 {
		single := mk(func(int) uint64 { return 0 })
		single[0] = 1
		out = append(out, single)
		last := mk(func(int) uint64 { return 0 })
		last[words-1] = 1 << 63
		out = append(out, last)
	}
	return out
}

// TestKernelDifferentialExhaustive sweeps every word count a signature of
// length [0, 4*64+3] can produce — all the unroll and tail boundaries of
// the 4x loops and the 32-byte SIMD chunks — crossing the hostile patterns
// pairwise and checking every kernel against the bit-by-bit oracle.
func TestKernelDifferentialExhaustive(t *testing.T) {
	if len(kernelImpls) < 2 {
		t.Logf("only the generic implementation is registered on this machine (kernels=%s)", Kernels())
	}
	rng := rand.New(rand.NewSource(42))
	for words := 0; words <= 8; words++ {
		pats := patterns(words, rng)
		for ai, a := range pats {
			for bi, b := range pats {
				label := labelFor(words, ai, bi)
				checkPairwise(t, label, a, b)
				checkAtLeastKernels(t, label, a, b)
			}
		}
	}
}

func labelFor(words, ai, bi int) string {
	return "words=" + itoa(words) + " a#" + itoa(ai) + " b#" + itoa(bi)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// TestKernelDifferentialBitLengths runs the Bitset-level operations for
// every bit length in [0, 4*wordBits+3]: the View/tail-mask layer on top of
// the kernels, with random contents per length.
func TestKernelDifferentialBitLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 0; n <= 4*wordBits+3; n++ {
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 1 {
				a.Set(i)
			}
			if rng.Intn(2) == 1 {
				b.Set(i)
			}
		}
		checkPairwise(t, "bits="+itoa(n), a.Words(), b.Words())
		checkAtLeastKernels(t, "bits="+itoa(n), a.Words(), b.Words())

		// Cross-check the Bitset methods themselves (they route through the
		// selected kernel, which may differ from any tested above when
		// SGTREE_NO_ASM is set).
		if got, want := a.Count(), naiveCount(a.Words()); got != want {
			t.Fatalf("bits=%d: Count = %d, oracle %d", n, got, want)
		}
		if got, want := a.AndCount(b), naiveAndCount(a.Words(), b.Words()); got != want {
			t.Fatalf("bits=%d: AndCount = %d, oracle %d", n, got, want)
		}
		if got, want := a.HammingDistance(b), naiveXorCount(a.Words(), b.Words()); got != want {
			t.Fatalf("bits=%d: HammingDistance = %d, oracle %d", n, got, want)
		}
		exact := naiveAndNotCount(a.Words(), b.Words())
		for _, limit := range atLeastLimits(exact) {
			got, reached := a.AndNotCountAtLeast(b, limit)
			if limit <= 0 {
				if got != 0 || !reached {
					t.Fatalf("bits=%d limit=%d: AndNotCountAtLeast = (%d, %v), want (0, true)", n, limit, got, reached)
				}
				continue
			}
			if reached != (got >= limit) {
				t.Fatalf("bits=%d limit=%d: reached=%v inconsistent with count %d", n, limit, reached, got)
			}
			checkAtLeast(t, "bits="+itoa(n), "Bitset.AndNotCountAtLeast", got, exact, limit)
		}
	}
}

// TestKernelMisalignedViews drives the kernels through View slices at every
// word offset of a shared backing array: the asm must not assume 16- or
// 32-byte alignment of either operand (it uses unaligned loads), and this
// is where that assumption would break.
func TestKernelMisalignedViews(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const words = 7
	backing := make([]uint64, words+8)
	for i := range backing {
		backing[i] = rng.Uint64()
	}
	for off := 0; off <= 8; off++ {
		a := backing[off : off+words]
		b := make([]uint64, words)
		for i := range b {
			b[i] = rng.Uint64()
		}
		checkPairwise(t, "off="+itoa(off), a, b)
		checkAtLeastKernels(t, "off="+itoa(off), a, b)

		va := View(a, words*wordBits)
		vb := View(b, words*wordBits)
		if got, want := va.HammingDistance(&vb), naiveXorCount(a, b); got != want {
			t.Fatalf("off=%d: misaligned View HammingDistance = %d, oracle %d", off, got, want)
		}
	}
}

// TestAtLeastLimitZero pins the documented limit <= 0 behaviour of the
// Bitset early-exit methods: (0, true) immediately, no counting, for zero
// and negative limits — the case is resolved before kernel dispatch.
func TestAtLeastLimitZero(t *testing.T) {
	a := FromPositions(130, []int{0, 64, 129})
	b := New(130)
	for _, limit := range []int{0, -1, math.MinInt} {
		if got, reached := a.AndNotCountAtLeast(b, limit); got != 0 || !reached {
			t.Errorf("AndNotCountAtLeast(limit=%d) = (%d, %v), want (0, true)", limit, got, reached)
		}
		if got, reached := a.HammingAtLeast(b, limit); got != 0 || !reached {
			t.Errorf("HammingAtLeast(limit=%d) = (%d, %v), want (0, true)", limit, got, reached)
		}
	}
	// And the smallest positive limit still counts: the kernels are never
	// handed a non-positive limit.
	if got, reached := a.AndNotCountAtLeast(b, 1); got < 1 || !reached {
		t.Errorf("AndNotCountAtLeast(limit=1) = (%d, %v), want count >= 1, reached", got, reached)
	}
}

// --- slab kernels ---

func naiveSlabCheck(t *testing.T, label string, q, slab []uint64, stride int, rows int) {
	t.Helper()
	for _, impl := range kernelImpls {
		if impl.andCountSlab == nil {
			continue
		}
		out := make([]int32, rows)
		kernels := []struct {
			name  string
			slabF func(q, slab []uint64, stride int, out []int32)
			pair  func(a, b []uint64) int
		}{
			{"andCountSlab", impl.andCountSlab, naiveAndCount},
			{"andNotCountSlab", impl.andNotCountSlab, naiveAndNotCount},
			{"xorCountSlab", impl.xorCountSlab, naiveXorCount},
		}
		for _, k := range kernels {
			for i := range out {
				out[i] = -1
			}
			k.slabF(q, slab, stride, out)
			for r := 0; r < rows; r++ {
				row := slab[r*stride : r*stride+len(q)]
				if want := int32(k.pair(q, row)); out[r] != want {
					t.Errorf("%s: %s/%s row %d = %d, oracle %d", label, impl.name, k.name, r, out[r], want)
				}
			}
		}
	}
}

// TestSlabKernelDifferential sweeps slab geometries: strides that hit the
// vectorized whole-row path (multiple of 4, len(q) == stride) and strides
// that must fall back to the generic row loop, with row counts around the
// unroll boundaries, against the bit-by-bit oracle. Padding words beyond
// len(q) are filled with garbage for the truncated-row cases to prove they
// are ignored, and zeroed for the padded cases to mirror the production
// layout.
func TestSlabKernelDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for _, stride := range []int{4, 8, 12, 16, 5, 6, 7, 9} {
		for _, qw := range []int{stride, stride - 1, stride - 3, 1} {
			if qw < 0 {
				continue
			}
			for rows := 0; rows <= 17; rows++ {
				slab := make([]uint64, rows*stride)
				for i := range slab {
					slab[i] = rng.Uint64() // garbage padding included
				}
				q := make([]uint64, qw)
				for i := range q {
					q[i] = rng.Uint64()
				}
				label := "stride=" + itoa(stride) + " qw=" + itoa(qw) + " rows=" + itoa(rows)
				naiveSlabCheck(t, label, q, slab, stride, rows)
			}
		}
	}

	// Production layout: zero padding, aligned base, exported entry points.
	const stride, qw, rows = 8, 5, 9
	slab := AlignedWords(rows * stride)
	q := make([]uint64, stride) // zero-padded query
	for r := 0; r < rows; r++ {
		for i := 0; i < qw; i++ {
			slab[r*stride+i] = rng.Uint64()
		}
	}
	for i := 0; i < qw; i++ {
		q[i] = rng.Uint64()
	}
	out := make([]int32, rows)
	AndNotCountSlab(q, slab, stride, out)
	for r := 0; r < rows; r++ {
		row := slab[r*stride : (r+1)*stride]
		if want := int32(naiveAndNotCount(q, row)); out[r] != want {
			t.Errorf("aligned AndNotCountSlab row %d = %d, oracle %d", r, out[r], want)
		}
	}
}

// TestAlignedWords pins the alignment and length contract of the slab
// allocator.
func TestAlignedWords(t *testing.T) {
	if AlignedWords(0) != nil || AlignedWords(-3) != nil {
		t.Fatal("AlignedWords(<=0) must return nil")
	}
	for _, n := range []int{1, 7, 8, 9, 64, 1000} {
		w := AlignedWords(n)
		if len(w) != n || cap(w) != n {
			t.Fatalf("AlignedWords(%d): len=%d cap=%d", n, len(w), cap(w))
		}
		for i, v := range w {
			if v != 0 {
				t.Fatalf("AlignedWords(%d): word %d not zeroed", n, i)
			}
		}
	}
}

// TestSlabPreconditionPanics pins the exported slab functions' argument
// validation.
func TestSlabPreconditionPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	q := make([]uint64, 8)
	mustPanic("stride<len(q)", func() {
		AndCountSlab(q, make([]uint64, 32), 4, make([]int32, 2))
	})
	mustPanic("short slab", func() {
		XorCountSlab(q, make([]uint64, 8), 8, make([]int32, 2))
	})
}
