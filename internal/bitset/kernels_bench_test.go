package bitset

import (
	"math/bits"
	"math/rand"
	"testing"
)

// Kernel micro-benchmarks. Naming matters: `make bench-kernels` selects
// `-bench Kernel`, and the scalar baselines (BenchmarkKernelScalar*) are the
// pre-kernel one-word-at-a-time loops kept here for comparison, so one run
// shows the unrolled-vs-scalar and (on capable hardware) asm-vs-Go deltas.
// The word sizes bracket the production geometries: 4 words is a 256-bit
// signature (one slab half-line), 8 is a 512-bit row, 16 and 64 are the
// compressed-codec and long-signature regimes.

var benchWordSizes = []int{4, 8, 16, 64}

func benchWords(n int, seed int64) []uint64 {
	r := rand.New(rand.NewSource(seed))
	w := make([]uint64, n)
	for i := range w {
		w[i] = r.Uint64()
	}
	return w
}

func benchLabel(words int) string {
	return "words=" + itoa(words)
}

// benchSink defeats dead-code elimination of the counted results.
var benchSink int

// scalarAndNotCount is the pre-kernel loop: one word per iteration, no
// unrolling — the baseline the 4x-unrolled Go kernels are measured against.
func scalarAndNotCount(a, b []uint64) int {
	c := 0
	for i := range a {
		c += bits.OnesCount64(a[i] &^ b[i])
	}
	return c
}

func scalarCount(a []uint64) int {
	c := 0
	for i := range a {
		c += bits.OnesCount64(a[i])
	}
	return c
}

func BenchmarkKernelScalarCount(b *testing.B) {
	for _, n := range benchWordSizes {
		a := benchWords(n, 1)
		b.Run(benchLabel(n), func(b *testing.B) {
			b.SetBytes(int64(8 * n))
			for i := 0; i < b.N; i++ {
				benchSink = scalarCount(a)
			}
		})
	}
}

func BenchmarkKernelCount(b *testing.B) {
	for _, n := range benchWordSizes {
		a := benchWords(n, 1)
		b.Run(benchLabel(n), func(b *testing.B) {
			b.SetBytes(int64(8 * n))
			for i := 0; i < b.N; i++ {
				benchSink = kernCount(a)
			}
		})
	}
}

func BenchmarkKernelScalarAndNotCount(b *testing.B) {
	for _, n := range benchWordSizes {
		x, y := benchWords(n, 1), benchWords(n, 2)
		b.Run(benchLabel(n), func(b *testing.B) {
			b.SetBytes(int64(16 * n))
			for i := 0; i < b.N; i++ {
				benchSink = scalarAndNotCount(x, y)
			}
		})
	}
}

func BenchmarkKernelAndNotCount(b *testing.B) {
	for _, n := range benchWordSizes {
		x, y := benchWords(n, 1), benchWords(n, 2)
		b.Run(benchLabel(n), func(b *testing.B) {
			b.SetBytes(int64(16 * n))
			for i := 0; i < b.N; i++ {
				benchSink = kernAndNotCount(x, y)
			}
		})
	}
}

func BenchmarkKernelAndCount(b *testing.B) {
	for _, n := range benchWordSizes {
		x, y := benchWords(n, 1), benchWords(n, 2)
		b.Run(benchLabel(n), func(b *testing.B) {
			b.SetBytes(int64(16 * n))
			for i := 0; i < b.N; i++ {
				benchSink = kernAndCount(x, y)
			}
		})
	}
}

func BenchmarkKernelXorCount(b *testing.B) {
	for _, n := range benchWordSizes {
		x, y := benchWords(n, 1), benchWords(n, 2)
		b.Run(benchLabel(n), func(b *testing.B) {
			b.SetBytes(int64(16 * n))
			for i := 0; i < b.N; i++ {
				benchSink = kernXorCount(x, y)
			}
		})
	}
}

// The AtLeast benchmarks measure both regimes of the early-exit kernels:
// "miss" (limit unreachable, full scan — the overhead of the per-block
// comparisons) and "hit" (limit reached in the first block — the payoff).
func BenchmarkKernelAndNotCountAtLeast(b *testing.B) {
	for _, n := range benchWordSizes {
		x, y := benchWords(n, 1), benchWords(n, 2)
		exact := kernAndNotCount(x, y)
		b.Run(benchLabel(n)+"/miss", func(b *testing.B) {
			b.SetBytes(int64(16 * n))
			for i := 0; i < b.N; i++ {
				benchSink = kernAndNotCountAtLeast(x, y, exact+1)
			}
		})
		b.Run(benchLabel(n)+"/hit", func(b *testing.B) {
			b.SetBytes(int64(16 * n))
			for i := 0; i < b.N; i++ {
				benchSink = kernAndNotCountAtLeast(x, y, 1)
			}
		})
	}
}

// Slab benchmarks: one batched pass over a 16-row padded slab versus 16
// per-entry kernel calls on the same rows — the comparison the core
// traversals make when picking an engine.
const benchSlabRows = 16

func benchSlab(stride, rows int, seed int64) []uint64 {
	s := AlignedWords(stride * rows)
	r := rand.New(rand.NewSource(seed))
	for i := range s {
		s[i] = r.Uint64()
	}
	return s
}

func BenchmarkKernelSlabAndCount(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		q := benchWords(n, 1)
		slab := benchSlab(n, benchSlabRows, 2)
		out := make([]int32, benchSlabRows)
		b.Run(benchLabel(n), func(b *testing.B) {
			b.SetBytes(int64(8 * n * benchSlabRows))
			for i := 0; i < b.N; i++ {
				AndCountSlab(q, slab, n, out)
			}
		})
	}
}

func BenchmarkKernelSlabAndNotCount(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		q := benchWords(n, 1)
		slab := benchSlab(n, benchSlabRows, 2)
		out := make([]int32, benchSlabRows)
		b.Run(benchLabel(n), func(b *testing.B) {
			b.SetBytes(int64(8 * n * benchSlabRows))
			for i := 0; i < b.N; i++ {
				AndNotCountSlab(q, slab, n, out)
			}
		})
	}
}

func BenchmarkKernelPerEntryAndNotCount(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		q := benchWords(n, 1)
		slab := benchSlab(n, benchSlabRows, 2)
		out := make([]int32, benchSlabRows)
		b.Run(benchLabel(n), func(b *testing.B) {
			b.SetBytes(int64(8 * n * benchSlabRows))
			for i := 0; i < b.N; i++ {
				for r := 0; r < benchSlabRows; r++ {
					out[r] = int32(kernAndNotCount(q, slab[r*n:r*n+n]))
				}
			}
		})
	}
}
