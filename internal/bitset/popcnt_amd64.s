//go:build amd64 && !purego

#include "textflag.h"

// Counting kernels. Two families:
//
//   - Pairwise scalar kernels (POPCNT): 4x-unrolled popcount loops over a
//     word-combining op, with a word tail. Four independent POPCNT
//     destination registers (zeroed first — POPCNT has a false output
//     dependency on many Intel cores) keep the adds pipelined.
//   - Slab kernels (AVX2): batched counts of a query against every row of
//     a node's signature slab, using the VPSHUFB nibble-lookup popcount
//     with VPSADBW accumulation. They require whole 32-byte chunks —
//     stride divisible by 4 words and a zero-padded query of exactly
//     stride words; the Go adapters enforce this and fall back otherwise.
//
// Every kernel here is registered with the differential harness
// (kernels_diff_test.go), which checks it bit-for-bit against the naive
// reference and the unrolled Go implementation on fuzzed and exhaustive
// tail-sweep inputs. Edit nothing here without running `go test -run
// Kernel -fuzz FuzzKernelEquivalence ./internal/bitset`.

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func asmCount(a []uint64) int
TEXT ·asmCount(SB), NOSPLIT, $0-32
	MOVQ a_base+0(FP), SI
	MOVQ a_len+8(FP), CX
	XORQ AX, AX
	XORQ R9, R9
	XORQ R10, R10
	XORQ R11, R11

count4:
	CMPQ CX, $4
	JLT  counttail
	XORL DX, DX
	XORL R8, R8
	XORL R12, R12
	XORL R13, R13
	POPCNTQ 0(SI), DX
	POPCNTQ 8(SI), R8
	POPCNTQ 16(SI), R12
	POPCNTQ 24(SI), R13
	ADDQ DX, AX
	ADDQ R8, R9
	ADDQ R12, R10
	ADDQ R13, R11
	ADDQ $32, SI
	SUBQ $4, CX
	JMP  count4

counttail:
	TESTQ CX, CX
	JZ    countdone
	XORL  DX, DX
	POPCNTQ 0(SI), DX
	ADDQ DX, AX
	ADDQ $8, SI
	DECQ CX
	JMP  counttail

countdone:
	ADDQ R9, AX
	ADDQ R10, AX
	ADDQ R11, AX
	MOVQ AX, ret+24(FP)
	RET

// func asmAndCount(a, b []uint64) int
TEXT ·asmAndCount(SB), NOSPLIT, $0-56
	MOVQ a_base+0(FP), SI
	MOVQ b_base+24(FP), DI
	MOVQ b_len+32(FP), CX
	XORQ AX, AX
	XORQ R9, R9
	XORQ R10, R10
	XORQ R11, R11

and4:
	CMPQ CX, $4
	JLT  andtail
	MOVQ 0(SI), DX
	MOVQ 8(SI), R8
	MOVQ 16(SI), R12
	MOVQ 24(SI), R13
	ANDQ 0(DI), DX
	ANDQ 8(DI), R8
	ANDQ 16(DI), R12
	ANDQ 24(DI), R13
	POPCNTQ DX, DX
	POPCNTQ R8, R8
	POPCNTQ R12, R12
	POPCNTQ R13, R13
	ADDQ DX, AX
	ADDQ R8, R9
	ADDQ R12, R10
	ADDQ R13, R11
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $4, CX
	JMP  and4

andtail:
	TESTQ CX, CX
	JZ    anddone
	MOVQ  0(SI), DX
	ANDQ  0(DI), DX
	POPCNTQ DX, DX
	ADDQ DX, AX
	ADDQ $8, SI
	ADDQ $8, DI
	DECQ CX
	JMP  andtail

anddone:
	ADDQ R9, AX
	ADDQ R10, AX
	ADDQ R11, AX
	MOVQ AX, ret+48(FP)
	RET

// func asmAndNotCount(a, b []uint64) int
// Counts |a &^ b|: load b, invert, AND with a.
TEXT ·asmAndNotCount(SB), NOSPLIT, $0-56
	MOVQ a_base+0(FP), SI
	MOVQ b_base+24(FP), DI
	MOVQ b_len+32(FP), CX
	XORQ AX, AX
	XORQ R9, R9
	XORQ R10, R10
	XORQ R11, R11

andn4:
	CMPQ CX, $4
	JLT  andntail
	MOVQ 0(DI), DX
	MOVQ 8(DI), R8
	MOVQ 16(DI), R12
	MOVQ 24(DI), R13
	NOTQ DX
	NOTQ R8
	NOTQ R12
	NOTQ R13
	ANDQ 0(SI), DX
	ANDQ 8(SI), R8
	ANDQ 16(SI), R12
	ANDQ 24(SI), R13
	POPCNTQ DX, DX
	POPCNTQ R8, R8
	POPCNTQ R12, R12
	POPCNTQ R13, R13
	ADDQ DX, AX
	ADDQ R8, R9
	ADDQ R12, R10
	ADDQ R13, R11
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $4, CX
	JMP  andn4

andntail:
	TESTQ CX, CX
	JZ    andndone
	MOVQ  0(DI), DX
	NOTQ  DX
	ANDQ  0(SI), DX
	POPCNTQ DX, DX
	ADDQ DX, AX
	ADDQ $8, SI
	ADDQ $8, DI
	DECQ CX
	JMP  andntail

andndone:
	ADDQ R9, AX
	ADDQ R10, AX
	ADDQ R11, AX
	MOVQ AX, ret+48(FP)
	RET

// func asmOrCount(a, b []uint64) int
TEXT ·asmOrCount(SB), NOSPLIT, $0-56
	MOVQ a_base+0(FP), SI
	MOVQ b_base+24(FP), DI
	MOVQ b_len+32(FP), CX
	XORQ AX, AX
	XORQ R9, R9
	XORQ R10, R10
	XORQ R11, R11

or4:
	CMPQ CX, $4
	JLT  ortail
	MOVQ 0(SI), DX
	MOVQ 8(SI), R8
	MOVQ 16(SI), R12
	MOVQ 24(SI), R13
	ORQ  0(DI), DX
	ORQ  8(DI), R8
	ORQ  16(DI), R12
	ORQ  24(DI), R13
	POPCNTQ DX, DX
	POPCNTQ R8, R8
	POPCNTQ R12, R12
	POPCNTQ R13, R13
	ADDQ DX, AX
	ADDQ R8, R9
	ADDQ R12, R10
	ADDQ R13, R11
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $4, CX
	JMP  or4

ortail:
	TESTQ CX, CX
	JZ    ordone
	MOVQ  0(SI), DX
	ORQ   0(DI), DX
	POPCNTQ DX, DX
	ADDQ DX, AX
	ADDQ $8, SI
	ADDQ $8, DI
	DECQ CX
	JMP  ortail

ordone:
	ADDQ R9, AX
	ADDQ R10, AX
	ADDQ R11, AX
	MOVQ AX, ret+48(FP)
	RET

// func asmXorCount(a, b []uint64) int
TEXT ·asmXorCount(SB), NOSPLIT, $0-56
	MOVQ a_base+0(FP), SI
	MOVQ b_base+24(FP), DI
	MOVQ b_len+32(FP), CX
	XORQ AX, AX
	XORQ R9, R9
	XORQ R10, R10
	XORQ R11, R11

xor4:
	CMPQ CX, $4
	JLT  xortail
	MOVQ 0(SI), DX
	MOVQ 8(SI), R8
	MOVQ 16(SI), R12
	MOVQ 24(SI), R13
	XORQ 0(DI), DX
	XORQ 8(DI), R8
	XORQ 16(DI), R12
	XORQ 24(DI), R13
	POPCNTQ DX, DX
	POPCNTQ R8, R8
	POPCNTQ R12, R12
	POPCNTQ R13, R13
	ADDQ DX, AX
	ADDQ R8, R9
	ADDQ R12, R10
	ADDQ R13, R11
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $4, CX
	JMP  xor4

xortail:
	TESTQ CX, CX
	JZ    xordone
	MOVQ  0(SI), DX
	XORQ  0(DI), DX
	POPCNTQ DX, DX
	ADDQ DX, AX
	ADDQ $8, SI
	ADDQ $8, DI
	DECQ CX
	JMP  xortail

xordone:
	ADDQ R9, AX
	ADDQ R10, AX
	ADDQ R11, AX
	MOVQ AX, ret+48(FP)
	RET

// func asmAndNotCountAtLeast(a, b []uint64, limit int) int
// Counts |a &^ b| with a block-granular early exit: the running count is
// compared against limit once per 4-word block, matching the contract of
// andNotCountAtLeastGo (a clamped result is in [limit, exact]). The
// caller guarantees limit > 0; a math.MaxInt limit never triggers the
// exit, so the kernel degenerates to the exact count.
TEXT ·asmAndNotCountAtLeast(SB), NOSPLIT, $0-64
	MOVQ a_base+0(FP), SI
	MOVQ b_base+24(FP), DI
	MOVQ b_len+32(FP), CX
	MOVQ limit+48(FP), R11
	XORQ AX, AX

anl4:
	CMPQ CX, $4
	JLT  anltail
	MOVQ 0(DI), DX
	MOVQ 8(DI), R8
	MOVQ 16(DI), R12
	MOVQ 24(DI), R13
	NOTQ DX
	NOTQ R8
	NOTQ R12
	NOTQ R13
	ANDQ 0(SI), DX
	ANDQ 8(SI), R8
	ANDQ 16(SI), R12
	ANDQ 24(SI), R13
	POPCNTQ DX, DX
	POPCNTQ R8, R8
	POPCNTQ R12, R12
	POPCNTQ R13, R13
	ADDQ DX, AX
	ADDQ R8, AX
	ADDQ R12, AX
	ADDQ R13, AX
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $4, CX
	CMPQ AX, R11
	JGE  anldone
	JMP  anl4

anltail:
	TESTQ CX, CX
	JZ    anldone
	MOVQ  0(DI), DX
	NOTQ  DX
	ANDQ  0(SI), DX
	POPCNTQ DX, DX
	ADDQ DX, AX
	ADDQ $8, SI
	ADDQ $8, DI
	DECQ CX
	JMP  anltail

anldone:
	MOVQ AX, ret+56(FP)
	RET

// func asmXorCountAtLeast(a, b []uint64, limit int) int
// Hamming distance with the same block-granular early exit.
TEXT ·asmXorCountAtLeast(SB), NOSPLIT, $0-64
	MOVQ a_base+0(FP), SI
	MOVQ b_base+24(FP), DI
	MOVQ b_len+32(FP), CX
	MOVQ limit+48(FP), R11
	XORQ AX, AX

xal4:
	CMPQ CX, $4
	JLT  xaltail
	MOVQ 0(SI), DX
	MOVQ 8(SI), R8
	MOVQ 16(SI), R12
	MOVQ 24(SI), R13
	XORQ 0(DI), DX
	XORQ 8(DI), R8
	XORQ 16(DI), R12
	XORQ 24(DI), R13
	POPCNTQ DX, DX
	POPCNTQ R8, R8
	POPCNTQ R12, R12
	POPCNTQ R13, R13
	ADDQ DX, AX
	ADDQ R8, AX
	ADDQ R12, AX
	ADDQ R13, AX
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $4, CX
	CMPQ AX, R11
	JGE  xaldone
	JMP  xal4

xaltail:
	TESTQ CX, CX
	JZ    xaldone
	MOVQ  0(SI), DX
	XORQ  0(DI), DX
	POPCNTQ DX, DX
	ADDQ DX, AX
	ADDQ $8, SI
	ADDQ $8, DI
	DECQ CX
	JMP  xaltail

xaldone:
	MOVQ AX, ret+56(FP)
	RET

// --- AVX2 slab kernels ---

// Byte-wise popcount lookup table for VPSHUFB: entry i holds the number
// of set bits in nibble i, replicated across both 128-bit lanes.
DATA popcntNibbleLUT<>+0(SB)/8, $0x0302020102010100
DATA popcntNibbleLUT<>+8(SB)/8, $0x0403030203020201
DATA popcntNibbleLUT<>+16(SB)/8, $0x0302020102010100
DATA popcntNibbleLUT<>+24(SB)/8, $0x0403030203020201
GLOBL popcntNibbleLUT<>(SB), RODATA|NOPTR, $32

DATA nibbleMask<>+0(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+8(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+16(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+24(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL nibbleMask<>(SB), RODATA|NOPTR, $32

// The three slab kernels share one skeleton and differ only in the
// combining instruction (VPAND / VPANDN / VPXOR). Per 32-byte chunk the
// combined vector is popcounted via the nibble LUT (VPSHUFB twice,
// VPADDB) and folded into a per-row qword accumulator with VPSADBW; the
// row total is horizontally summed and stored as an int32. Loads are
// VMOVDQU, so neither the query nor the slab needs 32-byte alignment
// (the decoder aligns slabs anyway for cache-line behaviour).
//
// SLAB_HEAD/SLAB_POPCNT/SLAB_TAIL:
//   R9  query base   SI query cursor (reset per row)
//   DI  slab cursor (advances straight through consecutive rows)
//   BX  out cursor   DX chunks per row   CX chunk countdown
//   R8  rows remaining
//   Y0 row accumulator, Y1 query chunk, Y2 slab chunk, Y3 combined,
//   Y4/Y5 nibble scratch, Y13 zero, Y14 nibble mask, Y15 LUT

#define SLAB_HEAD(rowloop) \
	MOVQ q+0(FP), R9 \
	MOVQ slab+8(FP), DI \
	MOVQ out+16(FP), BX \
	MOVQ stride+24(FP), DX \
	SHRQ $2, DX \
	MOVQ rows+32(FP), R8 \
	VMOVDQU popcntNibbleLUT<>(SB), Y15 \
	VMOVDQU nibbleMask<>(SB), Y14 \
	VPXOR Y13, Y13, Y13 \
rowloop: \
	TESTQ R8, R8 \
	JZ slabdone \
	MOVQ R9, SI \
	MOVQ DX, CX \
	VPXOR Y0, Y0, Y0

#define SLAB_POPCNT \
	VPAND Y3, Y14, Y4 \
	VPSRLW $4, Y3, Y5 \
	VPAND Y5, Y14, Y5 \
	VPSHUFB Y4, Y15, Y4 \
	VPSHUFB Y5, Y15, Y5 \
	VPADDB Y4, Y5, Y4 \
	VPSADBW Y13, Y4, Y4 \
	VPADDQ Y4, Y0, Y0 \
	ADDQ $32, SI \
	ADDQ $32, DI \
	DECQ CX

#define SLAB_TAIL(rowloop) \
	VEXTRACTI128 $1, Y0, X1 \
	VPADDQ X1, X0, X0 \
	VPSHUFD $0x4E, X0, X1 \
	VPADDQ X1, X0, X0 \
	VMOVQ X0, AX \
	MOVL AX, (BX) \
	ADDQ $4, BX \
	DECQ R8 \
	JMP rowloop \
slabdone: \
	VZEROUPPER \
	RET

// func asmAndCountSlab(q, slab *uint64, out *int32, stride, rows int)
TEXT ·asmAndCountSlab(SB), NOSPLIT, $0-40
	SLAB_HEAD(androw)
andchunk:
	VMOVDQU (SI), Y1
	VMOVDQU (DI), Y2
	VPAND   Y1, Y2, Y3
	SLAB_POPCNT
	JNZ andchunk
	SLAB_TAIL(androw)

// func asmAndNotCountSlab(q, slab *uint64, out *int32, stride, rows int)
// VPANDN computes ^Y2 & Y1 = query &^ row.
TEXT ·asmAndNotCountSlab(SB), NOSPLIT, $0-40
	SLAB_HEAD(andnrow)
andnchunk:
	VMOVDQU (SI), Y1
	VMOVDQU (DI), Y2
	VPANDN  Y1, Y2, Y3
	SLAB_POPCNT
	JNZ andnchunk
	SLAB_TAIL(andnrow)

// func asmXorCountSlab(q, slab *uint64, out *int32, stride, rows int)
TEXT ·asmXorCountSlab(SB), NOSPLIT, $0-40
	SLAB_HEAD(xorrow)
xorchunk:
	VMOVDQU (SI), Y1
	VMOVDQU (DI), Y2
	VPXOR   Y1, Y2, Y3
	SLAB_POPCNT
	JNZ xorchunk
	SLAB_TAIL(xorrow)
