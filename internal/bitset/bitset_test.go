package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewLengths(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 129, 525, 1000} {
		b := New(n)
		if b.Len() != n {
			t.Errorf("New(%d).Len() = %d", n, b.Len())
		}
		if b.Count() != 0 {
			t.Errorf("New(%d) not empty", n)
		}
		if !b.IsZero() {
			t.Errorf("New(%d).IsZero() = false", n)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetTestClear(t *testing.T) {
	b := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Test(i) {
			t.Fatalf("bit %d set before Set", i)
		}
		b.Set(i)
		if !b.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if b.Count() != 8 {
		t.Fatalf("Count = %d, want 8", b.Count())
	}
	b.Clear(64)
	if b.Test(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if b.Count() != 7 {
		t.Fatalf("Count = %d, want 7", b.Count())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	b := New(10)
	for name, fn := range map[string]func(){
		"Set(10)":   func() { b.Set(10) },
		"Set(-1)":   func() { b.Set(-1) },
		"Test(10)":  func() { b.Test(10) },
		"Clear(99)": func() { b.Clear(99) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	a, b := New(10), New(11)
	defer func() {
		if recover() == nil {
			t.Fatal("Or with mismatched lengths did not panic")
		}
	}()
	a.Or(b)
}

func TestBooleanOps(t *testing.T) {
	a := FromPositions(100, []int{1, 5, 64, 99})
	b := FromPositions(100, []int{5, 6, 64, 70})

	or := a.Clone()
	or.Or(b)
	if got := or.Positions(); !equalInts(got, []int{1, 5, 6, 64, 70, 99}) {
		t.Errorf("Or positions = %v", got)
	}
	and := a.Clone()
	and.And(b)
	if got := and.Positions(); !equalInts(got, []int{5, 64}) {
		t.Errorf("And positions = %v", got)
	}
	andnot := a.Clone()
	andnot.AndNot(b)
	if got := andnot.Positions(); !equalInts(got, []int{1, 99}) {
		t.Errorf("AndNot positions = %v", got)
	}
	xor := a.Clone()
	xor.Xor(b)
	if got := xor.Positions(); !equalInts(got, []int{1, 6, 70, 99}) {
		t.Errorf("Xor positions = %v", got)
	}
}

func TestNotRespectsTail(t *testing.T) {
	b := New(70)
	b.Set(0)
	b.Not()
	if b.Test(0) {
		t.Error("bit 0 still set after Not")
	}
	if got, want := b.Count(), 69; got != want {
		t.Errorf("Count after Not = %d, want %d (tail bits must stay clear)", got, want)
	}
	b.Not()
	if got := b.Positions(); !equalInts(got, []int{0}) {
		t.Errorf("double Not positions = %v, want [0]", got)
	}
}

func TestContains(t *testing.T) {
	a := FromPositions(64, []int{1, 2, 3})
	b := FromPositions(64, []int{1, 3})
	if !a.Contains(b) {
		t.Error("a should contain b")
	}
	if b.Contains(a) {
		t.Error("b should not contain a")
	}
	if !a.Contains(a) {
		t.Error("a should contain itself")
	}
	empty := New(64)
	if !a.Contains(empty) {
		t.Error("anything should contain empty")
	}
	if empty.Contains(a) {
		t.Error("empty should not contain a")
	}
}

func TestIntersects(t *testing.T) {
	a := FromPositions(200, []int{150})
	b := FromPositions(200, []int{150, 2})
	c := FromPositions(200, []int{2})
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("a,b should intersect")
	}
	if a.Intersects(c) {
		t.Error("a,c should not intersect")
	}
}

func TestCountingOps(t *testing.T) {
	a := FromPositions(256, []int{0, 10, 100, 200, 255})
	b := FromPositions(256, []int{10, 100, 201})
	if got := a.AndCount(b); got != 2 {
		t.Errorf("AndCount = %d, want 2", got)
	}
	if got := a.AndNotCount(b); got != 3 {
		t.Errorf("AndNotCount = %d, want 3", got)
	}
	if got := b.AndNotCount(a); got != 1 {
		t.Errorf("AndNotCount reverse = %d, want 1", got)
	}
	if got := a.OrCount(b); got != 6 {
		t.Errorf("OrCount = %d, want 6", got)
	}
	if got := a.HammingDistance(b); got != 4 {
		t.Errorf("Hamming = %d, want 4", got)
	}
	if got := a.EnlargementCount(b); got != 1 {
		t.Errorf("Enlargement = %d, want 1 (bit 201)", got)
	}
}

func TestNextSetAndIteration(t *testing.T) {
	pos := []int{0, 1, 63, 64, 100, 191}
	b := FromPositions(192, pos)
	var got []int
	for i := b.NextSet(0); i >= 0; i = b.NextSet(i + 1) {
		got = append(got, i)
	}
	if !equalInts(got, pos) {
		t.Errorf("NextSet iteration = %v, want %v", got, pos)
	}
	var fe []int
	b.ForEach(func(i int) { fe = append(fe, i) })
	if !equalInts(fe, pos) {
		t.Errorf("ForEach = %v, want %v", fe, pos)
	}
	if b.NextSet(192) != -1 {
		t.Error("NextSet past end should be -1")
	}
	if New(64).NextSet(0) != -1 {
		t.Error("NextSet on empty should be -1")
	}
	if b.NextSet(-5) != 0 {
		t.Error("NextSet with negative start should clamp to 0")
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	s := "100010"
	b, err := Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != s {
		t.Errorf("round trip = %q, want %q", b.String(), s)
	}
	if got := b.Positions(); !equalInts(got, []int{0, 4}) {
		t.Errorf("positions = %v", got)
	}
	if _, err := Parse("10x"); err == nil {
		t.Error("Parse should reject invalid characters")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromPositions(64, []int{5})
	b := a.Clone()
	b.Set(6)
	if a.Test(6) {
		t.Error("Clone shares storage with original")
	}
	a.CopyFrom(b)
	if !a.Test(6) {
		t.Error("CopyFrom did not copy")
	}
}

func TestSetWordsClampsTail(t *testing.T) {
	b := New(65)
	b.SetWords([]uint64{^uint64(0), ^uint64(0)})
	if got := b.Count(); got != 65 {
		t.Errorf("Count = %d, want 65 (tail clamped)", got)
	}
}

func TestEqual(t *testing.T) {
	a := FromPositions(64, []int{1})
	b := FromPositions(64, []int{1})
	c := FromPositions(65, []int{1})
	if !a.Equal(b) {
		t.Error("identical bitmaps not Equal")
	}
	if a.Equal(c) {
		t.Error("different lengths reported Equal")
	}
	b.Set(2)
	if a.Equal(b) {
		t.Error("different contents reported Equal")
	}
}

// --- property-based tests ---

// randomPair builds two random bitmaps of the same random length from quick's
// random values.
func randomPair(r *rand.Rand) (*Bitset, *Bitset) {
	n := 1 + r.Intn(600)
	a, b := New(n), New(n)
	for i := 0; i < n; i++ {
		if r.Intn(3) == 0 {
			a.Set(i)
		}
		if r.Intn(3) == 0 {
			b.Set(i)
		}
	}
	return a, b
}

func quickCheck(t *testing.T, name string, f func(seed int64) bool) {
	t.Helper()
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Errorf("%s: %v", name, err)
	}
}

func TestPropInclusionExclusion(t *testing.T) {
	quickCheck(t, "|a|+|b| = |a∪b|+|a∩b|", func(seed int64) bool {
		a, b := randomPair(rand.New(rand.NewSource(seed)))
		return a.Count()+b.Count() == a.OrCount(b)+a.AndCount(b)
	})
}

func TestPropHammingIdentities(t *testing.T) {
	quickCheck(t, "hamming = |a\\b|+|b\\a| and symmetry", func(seed int64) bool {
		a, b := randomPair(rand.New(rand.NewSource(seed)))
		h := a.HammingDistance(b)
		return h == a.AndNotCount(b)+b.AndNotCount(a) && h == b.HammingDistance(a)
	})
}

func TestPropTriangleInequality(t *testing.T) {
	quickCheck(t, "hamming triangle inequality", func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		mk := func() *Bitset {
			x := New(n)
			for i := 0; i < n; i++ {
				if r.Intn(4) == 0 {
					x.Set(i)
				}
			}
			return x
		}
		a, b, c := mk(), mk(), mk()
		return a.HammingDistance(c) <= a.HammingDistance(b)+b.HammingDistance(c)
	})
}

func TestPropOrContainsBoth(t *testing.T) {
	quickCheck(t, "a|b contains a and b", func(seed int64) bool {
		a, b := randomPair(rand.New(rand.NewSource(seed)))
		u := Union(a, b)
		return u.Contains(a) && u.Contains(b) && u.Count() >= a.Count() && u.Count() >= b.Count()
	})
}

func TestPropContainmentIffAndNotZero(t *testing.T) {
	quickCheck(t, "b⊆a ⟺ |b\\a|=0", func(seed int64) bool {
		a, b := randomPair(rand.New(rand.NewSource(seed)))
		return a.Contains(b) == (b.AndNotCount(a) == 0)
	})
}

func TestPropPositionsRoundTrip(t *testing.T) {
	quickCheck(t, "FromPositions(Positions(a)) == a", func(seed int64) bool {
		a, _ := randomPair(rand.New(rand.NewSource(seed)))
		return FromPositions(a.Len(), a.Positions()).Equal(a)
	})
}

func TestPropIntersectionCommutes(t *testing.T) {
	quickCheck(t, "a∩b == b∩a and ⊆ both", func(seed int64) bool {
		a, b := randomPair(rand.New(rand.NewSource(seed)))
		x := Intersection(a, b)
		y := Intersection(b, a)
		return x.Equal(y) && a.Contains(x) && b.Contains(x)
	})
}

func TestPropXorIsSymmetricDifference(t *testing.T) {
	quickCheck(t, "a^b == (a\\b)|(b\\a)", func(seed int64) bool {
		a, b := randomPair(rand.New(rand.NewSource(seed)))
		x := a.Clone()
		x.Xor(b)
		d1 := a.Clone()
		d1.AndNot(b)
		d2 := b.Clone()
		d2.AndNot(a)
		d1.Or(d2)
		return x.Equal(d1)
	})
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkHammingDistance512(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x, y := New(512), New(512)
	for i := 0; i < 512; i++ {
		if r.Intn(3) == 0 {
			x.Set(i)
		}
		if r.Intn(3) == 0 {
			y.Set(i)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.HammingDistance(y)
	}
}

func BenchmarkOr512(b *testing.B) {
	x, y := New(512), New(512)
	for i := 0; i < 512; i += 3 {
		x.Set(i)
		y.Set(i + 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Or(y)
	}
}
