// Package bitset implements fixed-length bitmaps backed by 64-bit words.
//
// It is the kernel underneath signatures: every signature-tree node entry,
// SG-table vertical signature, and query bitmap is a Bitset. The package is
// deliberately minimal and allocation-conscious: all binary operations have
// in-place variants, and the counting operations (popcounts of combinations
// of two bitmaps) are implemented without materializing intermediates,
// because they sit on the innermost loop of every similarity query.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Bitset is a fixed-length bitmap. The zero value is an empty bitmap of
// length 0; use New to create one with a given number of bits. Bits beyond
// the logical length are kept zero by all operations (the "tail invariant"),
// which lets counting operations run over whole words without masking.
type Bitset struct {
	words []uint64
	n     int // logical number of bits
}

// New returns a zeroed bitmap with capacity for n bits.
func New(n int) *Bitset {
	if n < 0 {
		panic("bitset: negative length")
	}
	return &Bitset{words: make([]uint64, wordsFor(n)), n: n}
}

// View returns a Bitset value backed by the caller's word slice, without
// copying. The slice must hold exactly wordsFor(n) words. The caller is
// responsible for the tail invariant until a mutating operation that clamps
// (SetWords, SetBytes, Not) runs; decoded views from the node codec always
// arrive clamped. Views let a node keep all its entry signatures in one
// contiguous slab.
func View(words []uint64, n int) Bitset {
	if n < 0 {
		panic("bitset: negative length")
	}
	if len(words) != wordsFor(n) {
		panic(fmt.Sprintf("bitset: view of %d words cannot hold %d bits", len(words), n))
	}
	return Bitset{words: words, n: n}
}

// FromPositions returns a bitmap of length n with the given bit positions set.
// Positions out of range cause a panic, matching Set.
func FromPositions(n int, positions []int) *Bitset {
	b := New(n)
	for _, p := range positions {
		b.Set(p)
	}
	return b
}

func wordsFor(n int) int { return (n + wordBits - 1) / wordBits }

// tailMask returns the mask of valid bits in the last word, or ^0 if the
// length is a multiple of the word size (or zero words).
func (b *Bitset) tailMask() uint64 {
	r := b.n % wordBits
	if r == 0 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(r)) - 1
}

// clampTail zeroes any bits beyond the logical length. Operations that can
// only clear bits don't need it; it exists for Not and deserialization.
func (b *Bitset) clampTail() {
	if len(b.words) > 0 {
		b.words[len(b.words)-1] &= b.tailMask()
	}
}

// Len returns the number of bits the bitmap holds.
func (b *Bitset) Len() int { return b.n }

// Set sets bit i to 1.
func (b *Bitset) Set(i int) {
	b.check(i)
	b.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear sets bit i to 0.
func (b *Bitset) Clear(i int) {
	b.check(i)
	b.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Test reports whether bit i is set.
func (b *Bitset) Test(i int) bool {
	b.check(i)
	return b.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

func (b *Bitset) check(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, b.n))
	}
}

// Reset clears every bit, keeping the length.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Clone returns a deep copy.
func (b *Bitset) Clone() *Bitset {
	c := &Bitset{words: make([]uint64, len(b.words)), n: b.n}
	copy(c.words, b.words)
	return c
}

// CopyFrom overwrites b with the contents of src. The lengths must match.
func (b *Bitset) CopyFrom(src *Bitset) {
	b.mustMatch(src)
	copy(b.words, src.words)
}

// mustMatch panics on operand length mismatch. The message is a plain
// constant: a fmt.Sprintf here would push every counting method past the
// inlining budget, costing an extra call frame per kernel invocation.
func (b *Bitset) mustMatch(o *Bitset) {
	if b.n != o.n {
		panic("bitset: operand length mismatch")
	}
}

// Count returns the number of set bits (the signature "area").
func (b *Bitset) Count() int {
	return kernCount(b.words)
}

// IsZero reports whether no bit is set.
func (b *Bitset) IsZero() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether b and o have the same length and the same bits.
func (b *Bitset) Equal(o *Bitset) bool {
	if b.n != o.n {
		return false
	}
	for i, w := range b.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// Or sets b to b | o in place.
func (b *Bitset) Or(o *Bitset) {
	b.mustMatch(o)
	for i, w := range o.words {
		b.words[i] |= w
	}
}

// And sets b to b & o in place.
func (b *Bitset) And(o *Bitset) {
	b.mustMatch(o)
	for i, w := range o.words {
		b.words[i] &= w
	}
}

// AndNot sets b to b &^ o in place.
func (b *Bitset) AndNot(o *Bitset) {
	b.mustMatch(o)
	for i, w := range o.words {
		b.words[i] &^= w
	}
}

// Xor sets b to b ^ o in place.
func (b *Bitset) Xor(o *Bitset) {
	b.mustMatch(o)
	for i, w := range o.words {
		b.words[i] ^= w
	}
}

// Not flips every bit in place (within the logical length).
func (b *Bitset) Not() {
	for i := range b.words {
		b.words[i] = ^b.words[i]
	}
	b.clampTail()
}

// Union returns a new bitmap b | o.
func Union(b, o *Bitset) *Bitset {
	r := b.Clone()
	r.Or(o)
	return r
}

// Intersection returns a new bitmap b & o.
func Intersection(b, o *Bitset) *Bitset {
	r := b.Clone()
	r.And(o)
	return r
}

// Contains reports whether every set bit of o is also set in b (o ⊆ b).
func (b *Bitset) Contains(o *Bitset) bool {
	b.mustMatch(o)
	for i, w := range o.words {
		if w&^b.words[i] != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether b and o share at least one set bit.
func (b *Bitset) Intersects(o *Bitset) bool {
	b.mustMatch(o)
	for i, w := range o.words {
		if w&b.words[i] != 0 {
			return true
		}
	}
	return false
}

// AndCount returns |b & o| without allocating.
func (b *Bitset) AndCount(o *Bitset) int {
	b.mustMatch(o)
	return kernAndCount(b.words, o.words)
}

// AndNotCount returns |b &^ o| (bits set in b but not in o) without allocating.
func (b *Bitset) AndNotCount(o *Bitset) int {
	b.mustMatch(o)
	return kernAndNotCount(b.words, o.words)
}

// AndNotCountAtLeast is AndNotCount with an early exit: counting may stop
// once the running count reaches limit. It returns the count so far and
// reached == (count >= limit).
//
// Contract (shared by every kernel implementation, asserted by the
// differential harness):
//
//   - limit <= 0: returns (0, true) immediately — a non-positive limit is
//     trivially reached before counting anything. This case is resolved
//     here, before kernel dispatch; kernels only ever see limit > 0.
//   - reached == false: the returned count is exact (and < limit).
//   - reached == true: the returned count is in [limit, exact] — a lower
//     bound on the true count. Implementations exit at block granularity
//     (or not at all: exact counts satisfy the contract too), so callers
//     must not interpret the clamped value as exact.
//
// This is the kernel behind the fused mindist-with-threshold bound: once a
// directory entry's lower bound exceeds the pruning radius, the remaining
// words need not be counted.
func (b *Bitset) AndNotCountAtLeast(o *Bitset, limit int) (int, bool) {
	b.mustMatch(o)
	if limit <= 0 {
		return 0, true
	}
	c := kernAndNotCountAtLeast(b.words, o.words, limit)
	return c, c >= limit
}

// OrCount returns |b | o| without allocating.
func (b *Bitset) OrCount(o *Bitset) int {
	b.mustMatch(o)
	return kernOrCount(b.words, o.words)
}

// HammingDistance returns |b XOR o|: the number of positions where the two
// bitmaps differ. For direct-mapped set signatures this is exactly the size
// of the symmetric difference of the underlying sets.
func (b *Bitset) HammingDistance(o *Bitset) int {
	b.mustMatch(o)
	return kernXorCount(b.words, o.words)
}

// HammingAtLeast is HammingDistance with an early exit, under exactly the
// AndNotCountAtLeast contract: limit <= 0 returns (0, true) before any
// counting; reached == false means the returned distance is exact; reached
// == true means it is a lower bound in [limit, exact distance].
func (b *Bitset) HammingAtLeast(o *Bitset, limit int) (int, bool) {
	b.mustMatch(o)
	if limit <= 0 {
		return 0, true
	}
	c := kernXorCountAtLeast(b.words, o.words, limit)
	return c, c >= limit
}

// EnlargementCount returns |o &^ b|: how many new bits b would gain if o
// were OR-ed into it. This is the "area enlargement" of the insertion
// heuristics.
func (b *Bitset) EnlargementCount(o *Bitset) int {
	return o.AndNotCount(b)
}

// NextSet returns the position of the first set bit at or after i, or -1 if
// there is none. Use it to iterate: for i := b.NextSet(0); i >= 0; i = b.NextSet(i+1).
func (b *Bitset) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= b.n {
		return -1
	}
	wi := i / wordBits
	w := b.words[wi] >> uint(i%wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(b.words); wi++ {
		if b.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(b.words[wi])
		}
	}
	return -1
}

// Positions returns the sorted positions of all set bits.
func (b *Bitset) Positions() []int {
	out := make([]int, 0, 16)
	for i := b.NextSet(0); i >= 0; i = b.NextSet(i + 1) {
		out = append(out, i)
	}
	return out
}

// ForEach calls fn for every set bit in ascending order.
func (b *Bitset) ForEach(fn func(i int)) {
	for wi, w := range b.words {
		base := wi * wordBits
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// Words exposes the backing words (read-only by convention); used by the
// signature codec for dense serialization.
func (b *Bitset) Words() []uint64 { return b.words }

// SetWords overwrites the backing words from raw data, clamping the tail.
// The slice must contain exactly wordsFor(Len()) words.
func (b *Bitset) SetWords(w []uint64) {
	if len(w) != len(b.words) {
		panic("bitset: SetWords length mismatch")
	}
	copy(b.words, w)
	b.clampTail()
}

// SetBytes overwrites the bitmap from its little-endian byte serialization
// (bit i of the bitmap is bit i%8 of byte i/8) and clamps the tail. src
// must hold exactly (Len()+7)/8 bytes — the dense codec representation.
// Unlike SetWords it needs no intermediate word slice, so the codec can
// decode straight from a page into a preallocated bitmap.
func (b *Bitset) SetBytes(src []byte) {
	if len(src) != (b.n+7)/8 {
		panic(fmt.Sprintf("bitset: SetBytes got %d bytes for %d bits", len(src), b.n))
	}
	for wi := range b.words {
		var w uint64
		base := wi * 8
		m := len(src) - base
		if m > 8 {
			m = 8
		}
		for j := 0; j < m; j++ {
			w |= uint64(src[base+j]) << (8 * uint(j))
		}
		b.words[wi] = w
	}
	b.clampTail()
}

// String renders the bitmap as a left-to-right bit string (bit 0 first),
// matching the figures in the paper (e.g. "100010").
func (b *Bitset) String() string {
	var sb strings.Builder
	sb.Grow(b.n)
	for i := 0; i < b.n; i++ {
		if b.Test(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Parse builds a bitmap from a bit string as produced by String.
func Parse(s string) (*Bitset, error) {
	b := New(len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '1':
			b.Set(i)
		case '0':
		default:
			return nil, fmt.Errorf("bitset: invalid character %q at %d", s[i], i)
		}
	}
	return b, nil
}
