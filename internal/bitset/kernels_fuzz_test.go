package bitset

import (
	"encoding/binary"
	"testing"
)

// FuzzKernelEquivalence feeds arbitrary word slices and limit values to
// every registered kernel implementation and cross-checks them against the
// bit-by-bit oracle — the fuzzing arm of the differential harness (the
// deterministic arm is kernels_diff_test.go). The raw bytes are split into
// two equal word slices plus a limit; a trailing byte steers the slab
// geometry so the vector whole-row path, the adapter fallback and the
// generic row loop all get fuzzed.
func FuzzKernelEquivalence(f *testing.F) {
	f.Add([]byte{}, 1)
	f.Add([]byte{0xFF, 0x00, 0xAA, 0x55, 0xFF, 0xFF, 0xFF, 0xFF, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08}, 3)
	f.Add(make([]byte, 16*8*2), 1) // two 16-word all-zero operands
	f.Add(makeOnes(9*8*2), 64)     // two 9-word all-one operands
	f.Fuzz(func(t *testing.T, raw []byte, limit int) {
		words := len(raw) / 16 // two equal slices of full words
		a := make([]uint64, words)
		b := make([]uint64, words)
		for i := 0; i < words; i++ {
			a[i] = binary.LittleEndian.Uint64(raw[i*8:])
			b[i] = binary.LittleEndian.Uint64(raw[(words+i)*8:])
		}

		wantCount := naiveCount(a)
		wantAnd := naiveAndCount(a, b)
		wantAndNot := naiveAndNotCount(a, b)
		wantOr := naiveOrCount(a, b)
		wantXor := naiveXorCount(a, b)
		for _, impl := range kernelImpls {
			if got := impl.count(a); got != wantCount {
				t.Fatalf("%s count = %d, oracle %d", impl.name, got, wantCount)
			}
			if got := impl.andCount(a, b); got != wantAnd {
				t.Fatalf("%s andCount = %d, oracle %d", impl.name, got, wantAnd)
			}
			if got := impl.andNotCount(a, b); got != wantAndNot {
				t.Fatalf("%s andNotCount = %d, oracle %d", impl.name, got, wantAndNot)
			}
			if got := impl.orCount(a, b); got != wantOr {
				t.Fatalf("%s orCount = %d, oracle %d", impl.name, got, wantOr)
			}
			if got := impl.xorCount(a, b); got != wantXor {
				t.Fatalf("%s xorCount = %d, oracle %d", impl.name, got, wantXor)
			}
			if limit > 0 {
				checkAtLeast(t, "fuzz", impl.name+"/andNot", impl.andNotCountAtLeast(a, b, limit), wantAndNot, limit)
				checkAtLeast(t, "fuzz", impl.name+"/xor", impl.xorCountAtLeast(a, b, limit), wantXor, limit)
			}
		}

		// Bitset-level methods, including the limit <= 0 contract.
		n := words * wordBits
		va, vb := View(a, n), View(b, n)
		gotC, reached := va.AndNotCountAtLeast(&vb, limit)
		if limit <= 0 {
			if gotC != 0 || !reached {
				t.Fatalf("AndNotCountAtLeast(limit=%d) = (%d, %v), want (0, true)", limit, gotC, reached)
			}
		} else {
			if reached != (gotC >= limit) {
				t.Fatalf("AndNotCountAtLeast(limit=%d): reached=%v inconsistent with %d", limit, reached, gotC)
			}
			checkAtLeast(t, "fuzz", "Bitset.AndNotCountAtLeast", gotC, wantAndNot, limit)
		}

		// Slab kernels: reinterpret a as query, b as first row, and tile b
		// into a few rows with limit steering the stride choice.
		if words > 0 {
			strides := []int{words, (words + 3) &^ 3, (words+3)&^3 + 4}
			stride := strides[abs(limit)%len(strides)]
			rows := 1 + abs(limit)%5
			slab := make([]uint64, rows*stride)
			for r := 0; r < rows; r++ {
				copy(slab[r*stride:r*stride+words], b)
				// rotate to vary the rows
				if words > 1 {
					first := slab[r*stride]
					copy(slab[r*stride:r*stride+words-1], slab[r*stride+1:r*stride+words])
					slab[r*stride+words-1] = first + uint64(r)
				}
			}
			naiveSlabCheck(t, "fuzz-slab", a, slab, stride, rows)
		}
	})
}

func makeOnes(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = 0xFF
	}
	return b
}

func abs(n int) int {
	if n < 0 {
		if n == -n { // MinInt
			return 0
		}
		return -n
	}
	return n
}
