//go:build !amd64 || purego

package bitset

// Portable dispatch: every kernel runs the unrolled Go implementation
// through a thin direct wrapper. The wrappers inline (and so do the Bitset
// methods calling them), so non-amd64 builds pay nothing for the dispatch
// layer — unlike the amd64 build, which routes through function variables
// to pick an implementation at init.

// Kernels reports the active kernel implementation; without assembly
// support this is always "generic-go".
func Kernels() string { return "generic-go" }

// FastSlabKernels reports whether the batched slab kernels are vectorized;
// never on the portable build, so scan layers keep their per-entry
// early-exit kernels.
func FastSlabKernels() bool { return false }

func kernCount(a []uint64) int          { return countGo(a) }
func kernAndCount(a, b []uint64) int    { return andCountGo(a, b) }
func kernAndNotCount(a, b []uint64) int { return andNotCountGo(a, b) }
func kernOrCount(a, b []uint64) int     { return orCountGo(a, b) }
func kernXorCount(a, b []uint64) int    { return xorCountGo(a, b) }

func kernAndNotCountAtLeast(a, b []uint64, limit int) int {
	return andNotCountAtLeastGo(a, b, limit)
}

func kernXorCountAtLeast(a, b []uint64, limit int) int {
	return xorCountAtLeastGo(a, b, limit)
}

func kernAndCountSlab(q, slab []uint64, stride int, out []int32) {
	andCountSlabGo(q, slab, stride, out)
}

func kernAndNotCountSlab(q, slab []uint64, stride int, out []int32) {
	andNotCountSlabGo(q, slab, stride, out)
}

func kernXorCountSlab(q, slab []uint64, stride int, out []int32) {
	xorCountSlabGo(q, slab, stride, out)
}
