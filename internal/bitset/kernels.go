package bitset

// This file is the portable half of the counting-kernel layer. Every
// popcount-of-a-combination operation the similarity queries run — Count,
// AndCount, AndNotCount, OrCount, XOR/Hamming, their early-exit *AtLeast
// variants, and the batched slab forms — funnels through one kern* dispatch
// function. On amd64 with POPCNT (and AVX2 for the slab kernels) the
// dispatchers select hand-written assembly (popcnt_amd64.s); everywhere
// else, and when the SGTREE_NO_ASM environment variable is set, they run
// the 4x-unrolled pure-Go loops below.
//
// Correctness protocol: the assembly, the unrolled Go loops, and a naive
// bit-by-bit reference must be indistinguishable. The differential harness
// (kernels_diff_test.go, FuzzKernelEquivalence) enforces this over
// exhaustive tail-length sweeps and fuzzed inputs; every implementation is
// registered in kernelImpls so the harness picks up new kernels
// automatically. Do not add a kernel without registering it there.

import (
	"math/bits"
	"unsafe"
)

// cacheLineWords is a 64-byte cache line in uint64 words.
const cacheLineWords = 8

// AlignedWords allocates n words whose base address is 64-byte aligned, for
// slab storage: rows laid out at cache-line-friendly strides then start on
// cache-line boundaries, so a blocked kernel pass touches the minimum number
// of lines per row. Alignment is achieved by over-allocating and slicing;
// the returned slice has length and capacity exactly n. Returns nil for
// n <= 0.
func AlignedWords(n int) []uint64 {
	if n <= 0 {
		return nil
	}
	raw := make([]uint64, n+cacheLineWords-1)
	base := uintptr(unsafe.Pointer(&raw[0]))
	off := 0
	if rem := base % 64; rem != 0 {
		off = int((64 - rem) / 8)
	}
	return raw[off : off+n : off+n]
}

// kernelImpl bundles one complete implementation of the counting kernels.
// The differential test harness runs every registered implementation
// against the naive bit-by-bit reference on identical inputs; production
// dispatch (the kern* functions in kernels_amd64.go / kernels_noasm.go)
// selects exactly one of them at init.
//
// Slab function fields may be nil when an implementation has no batched
// form (the harness skips them); the scalar fields are mandatory.
//
// Contracts shared by all implementations:
//
//   - pairwise kernels require len(a) == len(b) (the callers' mustMatch);
//   - *AtLeast kernels are called with limit > 0 only — the limit <= 0
//     case is resolved by the Bitset methods before dispatch — and return
//     a count c with: c == the exact count when c < limit, and
//     limit <= c <= exact when counting stopped early (implementations
//     may stop at any block granularity once the running count reaches
//     limit, or not stop at all: the exact count satisfies the contract);
//   - slab kernels count against each of the len(out) rows of
//     slab[r*stride : r*stride+len(q)]; words of a row beyond len(q) are
//     ignored (callers keep row padding zeroed, so implementations that
//     process whole padded rows — the AVX2 path — see identical results).
type kernelImpl struct {
	name string

	count                                    func(a []uint64) int
	andCount, andNotCount, orCount, xorCount func(a, b []uint64) int
	andNotCountAtLeast, xorCountAtLeast      func(a, b []uint64, limit int) int

	andCountSlab, andNotCountSlab, xorCountSlab func(q, slab []uint64, stride int, out []int32)
}

// kernelImpls lists every implementation compiled into this binary, for
// the differential harness. The generic Go implementation is always
// present; kernels_amd64.go appends the assembly implementation when the
// CPU supports it — independently of SGTREE_NO_ASM, so the harness
// cross-checks the assembly even in runs where dispatch avoids it.
var kernelImpls = []kernelImpl{goKernels}

// goKernels is the portable 4x-unrolled implementation.
var goKernels = kernelImpl{
	name:               "generic-go",
	count:              countGo,
	andCount:           andCountGo,
	andNotCount:        andNotCountGo,
	orCount:            orCountGo,
	xorCount:           xorCountGo,
	andNotCountAtLeast: andNotCountAtLeastGo,
	xorCountAtLeast:    xorCountAtLeastGo,
	andCountSlab:       andCountSlabGo,
	andNotCountSlab:    andNotCountSlabGo,
	xorCountSlab:       xorCountSlabGo,
}

// shortKernelWords is the length below which the pairwise Go kernels use a
// plain scalar loop: under two unrolled blocks the four-accumulator setup
// costs more than it saves, and 4-word (256-bit) signatures are the most
// common production geometry.
const shortKernelWords = 8

// countGo is the unrolled popcount. Four independent accumulators break
// the loop-carried dependency so the adds pipeline.
func countGo(a []uint64) int {
	if len(a) < shortKernelWords {
		c := 0
		for i := range a {
			c += bits.OnesCount64(a[i])
		}
		return c
	}
	var c0, c1, c2, c3 int
	i := 0
	for ; i+4 <= len(a); i += 4 {
		c0 += bits.OnesCount64(a[i])
		c1 += bits.OnesCount64(a[i+1])
		c2 += bits.OnesCount64(a[i+2])
		c3 += bits.OnesCount64(a[i+3])
	}
	c := c0 + c1 + c2 + c3
	for ; i < len(a); i++ {
		c += bits.OnesCount64(a[i])
	}
	return c
}

func andCountGo(a, b []uint64) int {
	a = a[:len(b)] // one bounds check up front, none in the loop
	if len(b) < shortKernelWords {
		c := 0
		for i := range b {
			c += bits.OnesCount64(a[i] & b[i])
		}
		return c
	}
	var c0, c1, c2, c3 int
	i := 0
	for ; i+4 <= len(b); i += 4 {
		c0 += bits.OnesCount64(a[i] & b[i])
		c1 += bits.OnesCount64(a[i+1] & b[i+1])
		c2 += bits.OnesCount64(a[i+2] & b[i+2])
		c3 += bits.OnesCount64(a[i+3] & b[i+3])
	}
	c := c0 + c1 + c2 + c3
	for ; i < len(b); i++ {
		c += bits.OnesCount64(a[i] & b[i])
	}
	return c
}

func andNotCountGo(a, b []uint64) int {
	a = a[:len(b)]
	if len(b) < shortKernelWords {
		c := 0
		for i := range b {
			c += bits.OnesCount64(a[i] &^ b[i])
		}
		return c
	}
	var c0, c1, c2, c3 int
	i := 0
	for ; i+4 <= len(b); i += 4 {
		c0 += bits.OnesCount64(a[i] &^ b[i])
		c1 += bits.OnesCount64(a[i+1] &^ b[i+1])
		c2 += bits.OnesCount64(a[i+2] &^ b[i+2])
		c3 += bits.OnesCount64(a[i+3] &^ b[i+3])
	}
	c := c0 + c1 + c2 + c3
	for ; i < len(b); i++ {
		c += bits.OnesCount64(a[i] &^ b[i])
	}
	return c
}

func orCountGo(a, b []uint64) int {
	a = a[:len(b)]
	if len(b) < shortKernelWords {
		c := 0
		for i := range b {
			c += bits.OnesCount64(a[i] | b[i])
		}
		return c
	}
	var c0, c1, c2, c3 int
	i := 0
	for ; i+4 <= len(b); i += 4 {
		c0 += bits.OnesCount64(a[i] | b[i])
		c1 += bits.OnesCount64(a[i+1] | b[i+1])
		c2 += bits.OnesCount64(a[i+2] | b[i+2])
		c3 += bits.OnesCount64(a[i+3] | b[i+3])
	}
	c := c0 + c1 + c2 + c3
	for ; i < len(b); i++ {
		c += bits.OnesCount64(a[i] | b[i])
	}
	return c
}

func xorCountGo(a, b []uint64) int {
	a = a[:len(b)]
	if len(b) < shortKernelWords {
		c := 0
		for i := range b {
			c += bits.OnesCount64(a[i] ^ b[i])
		}
		return c
	}
	var c0, c1, c2, c3 int
	i := 0
	for ; i+4 <= len(b); i += 4 {
		c0 += bits.OnesCount64(a[i] ^ b[i])
		c1 += bits.OnesCount64(a[i+1] ^ b[i+1])
		c2 += bits.OnesCount64(a[i+2] ^ b[i+2])
		c3 += bits.OnesCount64(a[i+3] ^ b[i+3])
	}
	c := c0 + c1 + c2 + c3
	for ; i < len(b); i++ {
		c += bits.OnesCount64(a[i] ^ b[i])
	}
	return c
}

// andNotCountAtLeastGo counts |a &^ b| with a block-granular early exit:
// the limit test runs once per unrolled block of four words, so a count
// that crosses limit mid-block returns the whole block's contribution
// (still within the [limit, exact] clamp contract). limit > 0 is the
// caller's responsibility. Short inputs skip the early exit entirely and
// return the exact count, which also satisfies the contract.
func andNotCountAtLeastGo(a, b []uint64, limit int) int {
	if len(b) < shortKernelWords {
		return andNotCountGo(a, b)
	}
	a = a[:len(b)]
	c := 0
	i := 0
	for ; i+4 <= len(b); i += 4 {
		c += bits.OnesCount64(a[i]&^b[i]) +
			bits.OnesCount64(a[i+1]&^b[i+1]) +
			bits.OnesCount64(a[i+2]&^b[i+2]) +
			bits.OnesCount64(a[i+3]&^b[i+3])
		if c >= limit {
			return c
		}
	}
	for ; i < len(b); i++ {
		c += bits.OnesCount64(a[i] &^ b[i])
	}
	return c
}

// xorCountAtLeastGo is the Hamming-distance counterpart of
// andNotCountAtLeastGo, with the same block-granular early exit.
func xorCountAtLeastGo(a, b []uint64, limit int) int {
	if len(b) < shortKernelWords {
		return xorCountGo(a, b)
	}
	a = a[:len(b)]
	c := 0
	i := 0
	for ; i+4 <= len(b); i += 4 {
		c += bits.OnesCount64(a[i]^b[i]) +
			bits.OnesCount64(a[i+1]^b[i+1]) +
			bits.OnesCount64(a[i+2]^b[i+2]) +
			bits.OnesCount64(a[i+3]^b[i+3])
		if c >= limit {
			return c
		}
	}
	for ; i < len(b); i++ {
		c += bits.OnesCount64(a[i] ^ b[i])
	}
	return c
}

// --- batched slab kernels, generic form ---

func andCountSlabGo(q, slab []uint64, stride int, out []int32) {
	for r := range out {
		row := slab[r*stride : r*stride+len(q)]
		out[r] = int32(andCountGo(q, row))
	}
}

func andNotCountSlabGo(q, slab []uint64, stride int, out []int32) {
	for r := range out {
		row := slab[r*stride : r*stride+len(q)]
		out[r] = int32(andNotCountGo(q, row))
	}
}

func xorCountSlabGo(q, slab []uint64, stride int, out []int32) {
	for r := range out {
		row := slab[r*stride : r*stride+len(q)]
		out[r] = int32(xorCountGo(q, row))
	}
}

// checkSlab validates the shared slab-kernel preconditions.
func checkSlab(q, slab []uint64, stride int, rows int) {
	if stride < len(q) {
		panic("bitset: slab stride shorter than the query")
	}
	if rows > 0 && len(slab) < rows*stride {
		panic("bitset: slab too short for the requested rows")
	}
}

// AndCountSlab computes |q ∩ rowᵢ| for each of the len(out) signature rows
// of the slab, writing the counts to out. Row i occupies
// slab[i*stride : (i+1)*stride]; only its first len(q) words are counted
// (rows padded with zero words beyond len(q) yield identical results, which
// is what lets the vectorized path process whole padded rows). One batched
// call replaces len(out) pairwise AndCount calls on the node-scan hot path.
func AndCountSlab(q, slab []uint64, stride int, out []int32) {
	checkSlab(q, slab, stride, len(out))
	kernAndCountSlab(q, slab, stride, out)
}

// AndNotCountSlab is AndCountSlab for |q \ rowᵢ| — the batched form of the
// plain-Hamming mindist kernel.
func AndNotCountSlab(q, slab []uint64, stride int, out []int32) {
	checkSlab(q, slab, stride, len(out))
	kernAndNotCountSlab(q, slab, stride, out)
}

// XorCountSlab is AndCountSlab for |q Δ rowᵢ| — the batched Hamming
// distance over a leaf's entry slab. For zero-padded rows the query must
// either be at most len-of-row words or itself zero-padded, since XOR
// against implicit zeros only works when both sides agree on the padding.
func XorCountSlab(q, slab []uint64, stride int, out []int32) {
	checkSlab(q, slab, stride, len(out))
	kernXorCountSlab(q, slab, stride, out)
}
