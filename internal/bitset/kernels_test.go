package bitset

import (
	"math"
	"math/rand"
	"testing"
)

// kernelPair builds two random bitmaps of the same length with correlated
// content (shared prefix of set bits) so early-exit kernels see both small
// and large counts.
func kernelPair(rng *rand.Rand, n int) (*Bitset, *Bitset) {
	a, b := New(n), New(n)
	for i := 0; i < n; i++ {
		if rng.Intn(3) != 0 {
			a.Set(i)
		}
		if rng.Intn(3) != 0 {
			b.Set(i)
		}
	}
	return a, b
}

func TestAndNotCountAtLeast(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		a, b := kernelPair(rng, n)
		exact := a.AndNotCount(b)
		for _, limit := range []int{-1, 0, 1, exact - 1, exact, exact + 1, n + 1} {
			got, reached := a.AndNotCountAtLeast(b, limit)
			if limit <= 0 {
				if got != 0 || !reached {
					t.Fatalf("n=%d limit=%d: got (%d,%v), want (0,true)", n, limit, got, reached)
				}
				continue
			}
			if reached != (exact >= limit) {
				t.Fatalf("n=%d limit=%d exact=%d: reached=%v", n, limit, exact, reached)
			}
			if reached {
				// A clamped count is a valid lower bound in [limit, exact].
				if got < limit || got > exact {
					t.Fatalf("n=%d limit=%d: clamped count %d outside [%d,%d]", n, limit, got, limit, exact)
				}
			} else if got != exact {
				t.Fatalf("n=%d limit=%d: unreached count %d != exact %d", n, limit, got, exact)
			}
		}
	}
}

func TestHammingAtLeast(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		a, b := kernelPair(rng, n)
		exact := a.HammingDistance(b)
		for _, limit := range []int{-1, 0, 1, exact - 1, exact, exact + 1, n + 1} {
			got, reached := a.HammingAtLeast(b, limit)
			if limit <= 0 {
				if got != 0 || !reached {
					t.Fatalf("n=%d limit=%d: got (%d,%v), want (0,true)", n, limit, got, reached)
				}
				continue
			}
			if reached != (exact >= limit) {
				t.Fatalf("n=%d limit=%d exact=%d: reached=%v", n, limit, exact, reached)
			}
			if reached {
				if got < limit || got > exact {
					t.Fatalf("n=%d limit=%d: clamped count %d outside [%d,%d]", n, limit, got, limit, exact)
				}
			} else if got != exact {
				t.Fatalf("n=%d limit=%d: unreached count %d != exact %d", n, limit, got, exact)
			}
		}
	}
}

func TestAtLeastKernelsWithMaxLimit(t *testing.T) {
	// MaxInt limits (from a +Inf threshold) must degrade to exact counts.
	rng := rand.New(rand.NewSource(9))
	a, b := kernelPair(rng, 500)
	if got, reached := a.AndNotCountAtLeast(b, math.MaxInt); reached || got != a.AndNotCount(b) {
		t.Fatalf("AndNotCountAtLeast(MaxInt) = (%d,%v)", got, reached)
	}
	if got, reached := a.HammingAtLeast(b, math.MaxInt); reached || got != a.HammingDistance(b) {
		t.Fatalf("HammingAtLeast(MaxInt) = (%d,%v)", got, reached)
	}
}

func TestView(t *testing.T) {
	words := []uint64{0, 0}
	v := View(words, 100)
	v.Set(3)
	v.Set(99)
	if words[0] != 1<<3 || words[1] != 1<<(99-64) {
		t.Fatal("view writes did not land in the backing slice")
	}
	if v.Count() != 2 || !v.Test(99) {
		t.Fatal("view reads wrong")
	}
	// Views interoperate with heap bitsets of the same length.
	o := New(100)
	o.Set(3)
	if v.AndNotCount(o) != 1 {
		t.Fatal("view AndNotCount wrong")
	}
	for _, bad := range []struct {
		words int
		n     int
	}{{1, 100}, {3, 100}, {2, 129}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("View(%d words, %d bits) did not panic", bad.words, bad.n)
				}
			}()
			View(make([]uint64, bad.words), bad.n)
		}()
	}
}

func TestSetBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, n := range []int{1, 7, 8, 63, 64, 65, 127, 128, 200, 500} {
		src := make([]byte, (n+7)/8)
		rng.Read(src)
		b := New(n)
		b.Set(0) // pre-set bits must be overwritten, not OR-ed
		b.SetBytes(src)
		for i := 0; i < n; i++ {
			want := src[i/8]&(1<<uint(i%8)) != 0
			if b.Test(i) != want {
				t.Fatalf("n=%d bit %d: got %v want %v", n, i, b.Test(i), want)
			}
		}
		// Tail bits beyond n must be clamped so counting ops stay exact.
		count := 0
		for i := 0; i < n; i++ {
			if src[i/8]&(1<<uint(i%8)) != 0 {
				count++
			}
		}
		if b.Count() != count {
			t.Fatalf("n=%d: Count=%d want %d (tail not clamped?)", n, b.Count(), count)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetBytes with wrong size did not panic")
		}
	}()
	New(64).SetBytes(make([]byte, 7))
}
