//go:build amd64 && !purego

package bitset

import "os"

// Assembly kernels (popcnt_amd64.s). The pairwise and *AtLeast kernels
// need POPCNT only; the slab kernels additionally need AVX2 (they use the
// VPSHUFB nibble-lookup popcount). Selection happens once at init:
// dispatch never re-checks features on the hot path.

//go:noescape
func asmCount(a []uint64) int

//go:noescape
func asmAndCount(a, b []uint64) int

//go:noescape
func asmAndNotCount(a, b []uint64) int

//go:noescape
func asmOrCount(a, b []uint64) int

//go:noescape
func asmXorCount(a, b []uint64) int

//go:noescape
func asmAndNotCountAtLeast(a, b []uint64, limit int) int

//go:noescape
func asmXorCountAtLeast(a, b []uint64, limit int) int

//go:noescape
func asmAndCountSlab(q, slab *uint64, out *int32, stride, rows int)

//go:noescape
func asmAndNotCountSlab(q, slab *uint64, out *int32, stride, rows int)

//go:noescape
func asmXorCountSlab(q, slab *uint64, out *int32, stride, rows int)

// cpuid and xgetbv wrap the raw instructions for feature detection.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

var (
	// hasPOPCNT / hasAVX2 report raw CPU capability; useAsm / useAVX2 are
	// the dispatch switches, which additionally honour SGTREE_NO_ASM. The
	// differential harness registers the assembly kernels whenever the CPU
	// is capable, so they stay cross-checked even when dispatch avoids
	// them.
	hasPOPCNT, hasAVX2 bool
	useAsm, useAVX2    bool
)

// Dispatch runs through these function variables, bound exactly once — the
// unrolled Go implementations by default, rebound to the assembly entry
// points in init when the CPU qualifies and SGTREE_NO_ASM is unset — and
// never written afterwards. Variables instead of branching wrapper
// functions keep the Bitset methods cheap enough to inline into callers,
// so a counting call stays one call deep, exactly like the pre-kernel
// scalar loops. (The portable build in kernels_noasm.go uses direct
// wrappers instead: with only one implementation there, an indirect call
// would be pure overhead.)
var (
	kernCount              = countGo
	kernAndCount           = andCountGo
	kernAndNotCount        = andNotCountGo
	kernOrCount            = orCountGo
	kernXorCount           = xorCountGo
	kernAndNotCountAtLeast = andNotCountAtLeastGo
	kernXorCountAtLeast    = xorCountAtLeastGo
	kernAndCountSlab       = andCountSlabGo
	kernAndNotCountSlab    = andNotCountSlabGo
	kernXorCountSlab       = xorCountSlabGo
)

func init() {
	hasPOPCNT, hasAVX2 = detectCPU()
	// SGTREE_NO_ASM (any non-empty value) forces the pure-Go kernels; the
	// escape hatch for debugging miscompares and for exercising the
	// fallback path in CI.
	if os.Getenv("SGTREE_NO_ASM") == "" {
		useAsm, useAVX2 = hasPOPCNT, hasAVX2
	}
	if useAsm {
		kernCount = asmCount
		kernAndCount = asmAndCount
		kernAndNotCount = asmAndNotCount
		kernOrCount = asmOrCount
		kernXorCount = asmXorCount
		kernAndNotCountAtLeast = asmAndNotCountAtLeast
		kernXorCountAtLeast = asmXorCountAtLeast
	}
	if useAVX2 {
		kernAndCountSlab = andCountSlabAsm
		kernAndNotCountSlab = andNotCountSlabAsm
		kernXorCountSlab = xorCountSlabAsm
	}
	if hasPOPCNT {
		impl := kernelImpl{
			name:               "amd64-popcnt",
			count:              asmCount,
			andCount:           asmAndCount,
			andNotCount:        asmAndNotCount,
			orCount:            asmOrCount,
			xorCount:           asmXorCount,
			andNotCountAtLeast: asmAndNotCountAtLeast,
			xorCountAtLeast:    asmXorCountAtLeast,
		}
		if hasAVX2 {
			impl.name = "amd64-avx2+popcnt"
			impl.andCountSlab = andCountSlabAsm
			impl.andNotCountSlab = andNotCountSlabAsm
			impl.xorCountSlab = xorCountSlabAsm
		}
		kernelImpls = append(kernelImpls, impl)
	}
}

// detectCPU probes POPCNT and AVX2 support, including the OS-enabled-YMM
// check (OSXSAVE + XCR0 bits 1:2) that AVX use requires.
func detectCPU() (popcnt, avx2 bool) {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 1 {
		return false, false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	popcnt = ecx1&(1<<23) != 0
	const osxsaveBit, avxBit = 1 << 27, 1 << 28
	if maxLeaf >= 7 && ecx1&osxsaveBit != 0 && ecx1&avxBit != 0 {
		if lo, _ := xgetbv(); lo&0x6 == 0x6 { // XMM and YMM state enabled
			_, ebx7, _, _ := cpuid(7, 0)
			avx2 = ebx7&(1<<5) != 0
		}
	}
	return popcnt, avx2
}

// Kernels reports the active kernel implementation, for diagnostics and
// the benchmark labels: "amd64-avx2+popcnt", "amd64-popcnt" or
// "generic-go".
func Kernels() string {
	switch {
	case useAVX2:
		return "amd64-avx2+popcnt"
	case useAsm:
		return "amd64-popcnt"
	default:
		return "generic-go"
	}
}

// FastSlabKernels reports whether the batched slab kernels are vectorized
// on this machine (and not disabled via SGTREE_NO_ASM). Callers that trade
// per-entry early-exit scans for batched slab scans should only do so when
// this is true: the generic slab loop computes exact counts with no early
// exit, so without vector hardware the per-entry kernels win.
func FastSlabKernels() bool { return useAVX2 }

// The asm slab entry points take raw pointers; these adapters apply the
// vector-path preconditions (whole padded rows, 32-byte chunks) and fall
// back to the generic loop when they do not hold. They are what both
// dispatch and the differential harness run, so the precondition logic is
// itself under test.

func andCountSlabAsm(q, slab []uint64, stride int, out []int32) {
	if len(out) == 0 {
		return
	}
	if stride%4 != 0 || len(q) != stride {
		andCountSlabGo(q, slab, stride, out)
		return
	}
	asmAndCountSlab(&q[0], &slab[0], &out[0], stride, len(out))
}

func andNotCountSlabAsm(q, slab []uint64, stride int, out []int32) {
	if len(out) == 0 {
		return
	}
	if stride%4 != 0 || len(q) != stride {
		andNotCountSlabGo(q, slab, stride, out)
		return
	}
	asmAndNotCountSlab(&q[0], &slab[0], &out[0], stride, len(out))
}

func xorCountSlabAsm(q, slab []uint64, stride int, out []int32) {
	if len(out) == 0 {
		return
	}
	if stride%4 != 0 || len(q) != stride {
		xorCountSlabGo(q, slab, stride, out)
		return
	}
	asmXorCountSlab(&q[0], &slab[0], &out[0], stride, len(out))
}
