// Package sketch implements MinHash set sketches and an LSH band index
// over them — the recall-tunable approximate tier in front of the exact
// signature tree (DESIGN.md §13).
//
// A sketch compresses a set into K small registers such that the
// fraction of matching registers between two sketches is an unbiased
// estimator of the sets' Jaccard similarity. Two constructions are
// provided: classic k-min MinHash (K independent hash streams, robust
// at any set size) and one-permutation hashing with rotation
// densification (one hash per element — K times cheaper to build on
// large sets). Registers are truncated to b bits ("b-bit minwise
// hashing", Li & König); the estimator corrects for the 2^-b accidental
// collision rate, so small registers trade variance, not bias.
//
// The Index packs the sketches of an indexed collection into an LSH
// band table: K registers split into bands of Rows consecutive
// registers, each band hashed into a bucket key. Two sets collide in a
// band only if all Rows registers match, so the probability a candidate
// surfaces after probing n bands is 1-(1-s^Rows)^n for Jaccard
// similarity s — the curve BandsForRecall inverts to turn a per-query
// recall target into a band-probe budget.
package sketch

import (
	"fmt"
	"math"

	"sgtree/internal/signature"
)

// Scheme selects the MinHash construction.
type Scheme int

const (
	// KMin is classic MinHash: K independent hash streams, register i
	// the minimum of stream i over the set. Build cost O(K·|set|).
	KMin Scheme = iota
	// OnePerm is one-permutation hashing: a single hash stream routed
	// into K bins, empty bins filled by borrowing the next non-empty
	// bin's value (rotation densification). Build cost O(|set| + K),
	// but the densified copies of the few occupied bins correlate
	// between sketches, biasing estimates upward for sets much smaller
	// than K — prefer KMin (the default) when typical sets are sparse
	// relative to the register count.
	OnePerm
)

// String returns the scheme name.
func (s Scheme) String() string {
	switch s {
	case KMin:
		return "kmin"
	case OnePerm:
		return "oneperm"
	default:
		return "unknown"
	}
}

// ParseScheme maps a scheme name back to its value.
func ParseScheme(name string) (Scheme, error) {
	switch name {
	case "", "kmin":
		return KMin, nil
	case "oneperm":
		return OnePerm, nil
	default:
		return 0, fmt.Errorf("sketch: unknown scheme %q (have kmin, oneperm)", name)
	}
}

// Params configures a sketch family. Two sketches are comparable only
// when built with identical Params.
type Params struct {
	// K is the number of registers per sketch. Estimator standard error
	// is about 1/√K. Required, and must be a multiple of Bands.
	K int
	// Bits is the register width in bits, 1..32 (default 16). Smaller
	// registers shrink the index and speed up matching; the estimator
	// corrects for the 2^-Bits collision floor.
	Bits int
	// Bands is the LSH band count; Rows = K/Bands registers per band
	// (default K/2, i.e. two rows — the high-recall end). More rows per
	// band sharpen the collision curve toward high similarities.
	Bands int
	// Scheme selects the construction (default KMin).
	Scheme Scheme
	// Seed perturbs every hash stream (default a fixed constant), so
	// independent sketch families can coexist.
	Seed uint64
}

const defaultSeed = 0x5347536b65746368 // "SGSketch"

// withDefaults resolves the zero values documented on the fields.
func (p Params) withDefaults() Params {
	if p.Bits == 0 {
		p.Bits = 16
	}
	if p.Bands == 0 && p.K > 0 {
		p.Bands = (p.K + 1) / 2
	}
	if p.Seed == 0 {
		p.Seed = defaultSeed
	}
	return p
}

// Validate checks the resolved parameters.
func (p Params) Validate() error {
	p = p.withDefaults()
	if p.K <= 0 {
		return fmt.Errorf("sketch: K = %d must be positive", p.K)
	}
	if p.Bits < 1 || p.Bits > 32 {
		return fmt.Errorf("sketch: Bits = %d outside [1,32]", p.Bits)
	}
	if p.Bands < 1 || p.Bands > p.K {
		return fmt.Errorf("sketch: Bands = %d outside [1,K=%d]", p.Bands, p.K)
	}
	if p.K%p.Bands != 0 {
		return fmt.Errorf("sketch: K = %d not a multiple of Bands = %d", p.K, p.Bands)
	}
	if p.Scheme != KMin && p.Scheme != OnePerm {
		return fmt.Errorf("sketch: unknown scheme %d", p.Scheme)
	}
	return nil
}

// Rows returns the registers per band of the resolved parameters.
func (p Params) Rows() int {
	p = p.withDefaults()
	return p.K / p.Bands
}

// Sketcher computes sketches for one parameter family. It is immutable
// after New and safe for concurrent use.
type Sketcher struct {
	p     Params
	seeds []uint64 // KMin: one seed per register stream
	mask  uint32   // keeps the low Bits bits of a register
}

// New builds a Sketcher, resolving parameter defaults.
func New(p Params) (*Sketcher, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := &Sketcher{p: p}
	if p.Bits == 32 {
		s.mask = ^uint32(0)
	} else {
		s.mask = (1 << uint(p.Bits)) - 1
	}
	if p.Scheme == KMin {
		// Per-register seeds from a splitmix64 stream off the base seed,
		// the standard way to spawn independent full-avalanche streams.
		s.seeds = make([]uint64, p.K)
		x := p.Seed
		for i := range s.seeds {
			x += 0x9e3779b97f4a7c15
			s.seeds[i] = mix64(x)
		}
	}
	return s, nil
}

// Params returns the resolved parameters.
func (s *Sketcher) Params() Params { return s.p }

// K returns the register count.
func (s *Sketcher) K() int { return s.p.K }

// Sketch fills regs (length K) with the b-bit sketch of the set given
// by its sorted element positions. The scratch slice mins (grown as
// needed, may be nil) carries the 64-bit minima between the kernel and
// the truncation; passing the same scratch across calls avoids the
// per-sketch allocation. An empty set sketches to all-mask registers —
// two empty sets therefore estimate similarity 1, matching the
// signature package's empty-set conventions.
func (s *Sketcher) Sketch(positions []uint32, regs []uint32, mins []uint64) []uint64 {
	if len(regs) != s.p.K {
		panic("sketch: regs length != K")
	}
	if cap(mins) < s.p.K {
		mins = make([]uint64, s.p.K)
	}
	mins = mins[:s.p.K]
	if s.p.Scheme == KMin {
		kminKernel(s.seeds, positions, mins)
	} else {
		onePermKernel(s.p.Seed, positions, mins)
		densify(mins)
	}
	for i, m := range mins {
		regs[i] = uint32(m) & s.mask
	}
	return mins
}

// densify fills empty one-permutation bins by rotation: bin i borrows
// the value of the nearest non-empty bin to its right (circularly),
// re-mixed with the borrow distance so two sets that share the donor
// bin but differ in which bins are empty do not spuriously match on
// the borrowed registers beyond what the donor match implies. With no
// occupied bin at all (empty set) every register keeps the sentinel.
func densify(mins []uint64) {
	k := len(mins)
	// Find any occupied bin; bail if none.
	first := -1
	for i, m := range mins {
		if m != emptyBin {
			first = i
			break
		}
	}
	if first < 0 {
		return
	}
	// Walk right-to-left from the first occupied bin so every empty bin
	// sees the nearest occupied bin on its right in one circular pass.
	donor := uint64(0)
	dist := uint64(0)
	for off := 0; off < k; off++ {
		i := (first - off + k) % k
		if mins[i] != emptyBin {
			donor = mins[i]
			dist = 0
		} else {
			dist++
			mins[i] = mix64(donor + dist)
		}
	}
}

// Estimate returns the Jaccard-similarity estimate for two sketches of
// this family, corrected for the b-bit collision floor: with matched
// fraction m and accidental collision rate c = 2^-Bits, the unbiased
// estimate is (m-c)/(1-c), clamped into [0,1].
func (s *Sketcher) Estimate(a, b []uint32) float64 {
	m := float64(matchKernel(a, b)) / float64(s.p.K)
	c := math.Exp2(-float64(s.p.Bits))
	j := (m - c) / (1 - c)
	if j < 0 {
		return 0
	}
	if j > 1 {
		return 1
	}
	return j
}

// EstimateDistance converts a Jaccard-similarity estimate into a
// distance under the given metric, using the two sets' cardinalities:
// from j ≈ i/(qa+ta-i) the implied intersection is i = j(qa+ta)/(1+j),
// which the standard identities turn into each metric's distance. The
// empty-set conventions match signature.Distance (two empty sets are
// at distance 0; empty vs non-empty uses j = 0).
func EstimateDistance(m signature.Metric, j float64, qa, ta int) float64 {
	if qa == 0 && ta == 0 {
		return 0
	}
	if qa == 0 || ta == 0 {
		j = 0
	}
	i := j * float64(qa+ta) / (1 + j)
	switch m {
	case signature.Hamming:
		d := float64(qa+ta) - 2*i
		if d < 0 {
			return 0
		}
		return d
	case signature.Jaccard:
		return 1 - j
	case signature.Dice:
		return 1 - 2*i/float64(qa+ta)
	case signature.Cosine:
		return 1 - i/math.Sqrt(float64(qa)*float64(ta))
	default:
		panic("sketch: unknown metric")
	}
}
