package sketch

import (
	"fmt"
	"math"
)

// Record is one sketched set in an Index: the caller's id, an opaque
// routing token (the facade stores the set's leaf page id there, so a
// candidate maps straight to the tree leaf to verify), and the set's
// cardinality (needed to turn Jaccard estimates into metric distances
// in answer mode).
type Record struct {
	TID  uint32
	Leaf uint32
	Area int32
}

// Index is an in-memory LSH band table over the sketches of one
// collection. Build with Add (single-writer); after the build it is
// immutable and safe for concurrent queries. The facade rebuilds the
// whole index when the tree's snapshot epoch moves — records are small
// (12 bytes + K registers), so a rebuild is a linear scan, not a tree
// operation.
type Index struct {
	sk    *Sketcher
	rows  int
	bands int

	recs    []Record
	regs    []uint32             // all sketches, flat: record i at [i*K, (i+1)*K)
	buckets []map[uint64][]int32 // per band: bucket key -> record indices

	// Leaf tokens interned to dense indices at build time, so query-time
	// leaf deduplication is a stamp-array write instead of a map insert
	// (the map version dominated route-mode fixed cost per query).
	leafIDs  []uint32         // dense leaf index -> leaf token
	recLeaf  []int32          // record index -> dense leaf index
	leafById map[uint32]int32 // build scratch, dead after the last Add

	epoch uint64 // tree snapshot epoch the records were walked at

	// build scratch, dead after the last Add
	mins []uint64
}

// NewIndex creates an empty index for one parameter family.
func NewIndex(p Params) (*Index, error) {
	sk, err := New(p)
	if err != nil {
		return nil, err
	}
	p = sk.Params()
	ix := &Index{
		sk:       sk,
		rows:     p.K / p.Bands,
		bands:    p.Bands,
		buckets:  make([]map[uint64][]int32, p.Bands),
		leafById: make(map[uint32]int32),
	}
	for b := range ix.buckets {
		ix.buckets[b] = make(map[uint64][]int32)
	}
	return ix, nil
}

// Sketcher returns the index's sketch family (for sketching queries).
func (ix *Index) Sketcher() *Sketcher { return ix.sk }

// Len returns the number of records.
func (ix *Index) Len() int { return len(ix.recs) }

// Bands returns the total band count.
func (ix *Index) Bands() int { return ix.bands }

// Epoch returns the tree snapshot epoch recorded by SetEpoch — the
// version of the tree the records' leaf tokens are valid for.
func (ix *Index) Epoch() uint64 { return ix.epoch }

// SetEpoch records the snapshot epoch the records were walked at.
func (ix *Index) SetEpoch(e uint64) { ix.epoch = e }

// Add sketches one set (given by its sorted element positions) and
// files it under every band bucket. Not safe concurrently with queries
// or other Adds — the index is built single-writer, then published.
func (ix *Index) Add(tid, leaf uint32, area int, positions []uint32) {
	k := ix.sk.K()
	i := int32(len(ix.recs))
	ix.recs = append(ix.recs, Record{TID: tid, Leaf: leaf, Area: int32(area)})
	li, ok := ix.leafById[leaf]
	if !ok {
		li = int32(len(ix.leafIDs))
		ix.leafIDs = append(ix.leafIDs, leaf)
		ix.leafById[leaf] = li
	}
	ix.recLeaf = append(ix.recLeaf, li)
	ix.regs = append(ix.regs, make([]uint32, k)...)
	regs := ix.regs[int(i)*k:]
	ix.mins = ix.sk.Sketch(positions, regs, ix.mins)
	for b := 0; b < ix.bands; b++ {
		key := bandHash(b, regs[b*ix.rows:(b+1)*ix.rows])
		ix.buckets[b][key] = append(ix.buckets[b][key], i)
	}
}

// Record returns record i.
func (ix *Index) Record(i int32) Record { return ix.recs[i] }

// Regs returns record i's registers (read-only).
func (ix *Index) Regs(i int32) []uint32 {
	k := ix.sk.K()
	return ix.regs[int(i)*k : int(i)*k+k]
}

// BandsForRecall returns how many bands to probe so a true neighbor of
// Jaccard similarity s0 surfaces with probability at least recall:
// the smallest n with 1-(1-p)^n >= recall, where p = (s0 + (1-s0)·2^-b)
// ^ rows is the single-band collision probability (register matches
// include the b-bit accidental-collision floor). The result is clamped
// into [1, Bands]; recall >= 1 probes every band.
func (ix *Index) BandsForRecall(recall, s0 float64) int {
	if recall >= 1 {
		return ix.bands
	}
	if recall <= 0 {
		return 1
	}
	c := math.Exp2(-float64(ix.sk.Params().Bits))
	p := math.Pow(s0+(1-s0)*c, float64(ix.rows))
	if p >= 1 {
		return 1
	}
	if p <= 0 {
		return ix.bands
	}
	n := int(math.Ceil(math.Log(1-recall) / math.Log(1-p)))
	if n < 1 {
		n = 1
	}
	if n > ix.bands {
		n = ix.bands
	}
	return n
}

// CandidateSet is reusable per-query scratch for Candidates: an epoch
// stamp per record replaces a visited bitmap that would otherwise need
// clearing between queries. One CandidateSet serves one query at a
// time; pool them for concurrent queries.
type CandidateSet struct {
	stamp []uint32
	cur   uint32
	out   []int32

	lstamp []uint32 // per dense leaf index, same stamp discipline
	leaves []uint32
}

// Candidates appends to cs the indices of every record colliding with
// the query sketch in at least one of the first probe bands (clamped
// to [1, Bands]), deduplicated, and returns the slice. The returned
// slice is valid until the next Candidates call on the same cs.
func (ix *Index) Candidates(qregs []uint32, probe int, cs *CandidateSet) []int32 {
	if probe < 1 {
		probe = 1
	}
	if probe > ix.bands {
		probe = ix.bands
	}
	if len(cs.stamp) < len(ix.recs) {
		// cur restarts at 1, so the sibling stamp array must be cleared
		// too or its stale entries could alias the restarted counter.
		cs.stamp = make([]uint32, len(ix.recs))
		for i := range cs.lstamp {
			cs.lstamp[i] = 0
		}
		cs.cur = 0
	}
	cs.cur++
	if cs.cur == 0 { // stamp wrap: reset both arrays and restart
		for i := range cs.stamp {
			cs.stamp[i] = 0
		}
		for i := range cs.lstamp {
			cs.lstamp[i] = 0
		}
		cs.cur = 1
	}
	cs.out = cs.out[:0]
	for b := 0; b < probe; b++ {
		key := bandHash(b, qregs[b*ix.rows:(b+1)*ix.rows])
		for _, r := range ix.buckets[b][key] {
			if cs.stamp[r] != cs.cur {
				cs.stamp[r] = cs.cur
				cs.out = append(cs.out, r)
			}
		}
	}
	return cs.out
}

// CandidateLeaves returns the deduplicated leaf tokens of every record
// colliding with the query sketch in at least one of the first probe
// bands (clamped to [1, Bands]). It is the route-mode fast path:
// verification is leaf-granular, so deduplicating at leaf granularity
// directly — one stamp-array write per colliding record, no per-record
// output — does strictly less work than Candidates. The returned slice
// is valid until the next CandidateLeaves call on the same cs.
func (ix *Index) CandidateLeaves(qregs []uint32, probe int, cs *CandidateSet) []uint32 {
	if probe < 1 {
		probe = 1
	}
	if probe > ix.bands {
		probe = ix.bands
	}
	if len(cs.lstamp) < len(ix.leafIDs) {
		// Same aliasing hazard as in Candidates, mirrored.
		cs.lstamp = make([]uint32, len(ix.leafIDs))
		for i := range cs.stamp {
			cs.stamp[i] = 0
		}
		cs.cur = 0
	}
	cs.cur++
	if cs.cur == 0 { // stamp wrap: reset and restart
		for i := range cs.stamp {
			cs.stamp[i] = 0
		}
		for i := range cs.lstamp {
			cs.lstamp[i] = 0
		}
		cs.cur = 1
	}
	cs.leaves = cs.leaves[:0]
	for b := 0; b < probe; b++ {
		key := bandHash(b, qregs[b*ix.rows:(b+1)*ix.rows])
		for _, r := range ix.buckets[b][key] {
			if li := ix.recLeaf[r]; cs.lstamp[li] != cs.cur {
				cs.lstamp[li] = cs.cur
				cs.leaves = append(cs.leaves, ix.leafIDs[li])
			}
		}
	}
	return cs.leaves
}

// MemoryFootprint returns the approximate resident bytes of the index
// (records, registers and bucket tables), for stats reporting.
func (ix *Index) MemoryFootprint() int {
	bytes := len(ix.recs)*12 + len(ix.regs)*4
	for _, m := range ix.buckets {
		for _, ids := range m {
			bytes += 16 + len(ids)*4
		}
	}
	return bytes
}

// String describes the index geometry.
func (ix *Index) String() string {
	p := ix.sk.Params()
	return fmt.Sprintf("sketch.Index{%s K=%d b=%d bands=%dx%d n=%d}",
		p.Scheme, p.K, p.Bits, ix.bands, ix.rows, len(ix.recs))
}
