package sketch

import "os"

// Hashing kernels. Sketch construction is a tight loop — K register
// minima over every element of the input set — so, like the popcount
// layer in internal/bitset, the package keeps one scalar reference
// implementation and one 4x-unrolled variant behind a small registry:
// the dispatcher binds the fastest implementation to package-level
// function variables once at init, and the differential tests (plus
// FuzzSketchEquivalence) iterate kernelImpls to pin every variant
// bit-identical to the scalar reference. Setting the
// SGTREE_SKETCH_SCALAR environment variable forces the scalar kernels,
// mirroring the SGTREE_NO_ASM escape hatch of the bitset layer.

// kernelImpl is one complete kernel set. All implementations of a slot
// must be bit-identical on every input — the registry exists so the
// tests can say that mechanically.
type kernelImpl struct {
	name string
	// kmin fills mins[i] = min over xs of mix64(uint64(x) ^ seeds[i]),
	// one independent hash stream per register (classic k-min MinHash).
	// mins[i] is ^uint64(0) when xs is empty.
	kmin func(seeds []uint64, xs []uint32, mins []uint64)
	// onePerm hashes every element once with the single seed, routes it
	// to bin (top32(h)·k)>>32 and keeps the per-bin minimum
	// (one-permutation hashing). Empty bins keep the emptyBin sentinel;
	// densification happens in the scheme layer, outside the kernel.
	onePerm func(seed uint64, xs []uint32, mins []uint64)
	// match counts equal positions of two equal-length register vectors
	// — the collision count behind the MinHash estimator.
	match func(a, b []uint32) int
}

// emptyBin marks a one-permutation bin no element hashed into. A real
// hash value can collide with it only with probability 2^-64 per
// element; such an element would be treated as absent from its bin,
// which costs a densification borrow, never an out-of-range register.
const emptyBin = ^uint64(0)

// mix64 is the splitmix64 finalizer — the same full-avalanche mix the
// signature package's HashMapper uses. One application per (element,
// seed) pair is the entire hash budget of a sketch.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// binOf maps a hash to one of k one-permutation bins without division:
// the top 32 bits scale into [0,k) via a 32.32 fixed-point multiply, so
// the bins partition the hash space into k near-equal ranges.
func binOf(h uint64, k int) int {
	return int((h >> 32) * uint64(k) >> 32)
}

// --- scalar reference kernels ---

func kminScalar(seeds []uint64, xs []uint32, mins []uint64) {
	for i, s := range seeds {
		m := ^uint64(0)
		for _, x := range xs {
			if h := mix64(uint64(x) ^ s); h < m {
				m = h
			}
		}
		mins[i] = m
	}
}

func onePermScalar(seed uint64, xs []uint32, mins []uint64) {
	for i := range mins {
		mins[i] = emptyBin
	}
	k := len(mins)
	for _, x := range xs {
		h := mix64(uint64(x) ^ seed)
		if b := binOf(h, k); h < mins[b] {
			mins[b] = h
		}
	}
}

func matchScalar(a, b []uint32) int {
	n := 0
	for i := range a {
		if a[i] == b[i] {
			n++
		}
	}
	return n
}

// --- unrolled kernels ---

// kminUnrolled processes four registers per pass over the input set:
// the element loads and the ^-mix amortize across four independent
// minima, which keeps four dependency chains in flight the way the
// bitset kernels keep four popcount accumulators.
func kminUnrolled(seeds []uint64, xs []uint32, mins []uint64) {
	i := 0
	for ; i+4 <= len(seeds); i += 4 {
		s0, s1, s2, s3 := seeds[i], seeds[i+1], seeds[i+2], seeds[i+3]
		m0, m1, m2, m3 := ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)
		for _, x := range xs {
			v := uint64(x)
			if h := mix64(v ^ s0); h < m0 {
				m0 = h
			}
			if h := mix64(v ^ s1); h < m1 {
				m1 = h
			}
			if h := mix64(v ^ s2); h < m2 {
				m2 = h
			}
			if h := mix64(v ^ s3); h < m3 {
				m3 = h
			}
		}
		mins[i], mins[i+1], mins[i+2], mins[i+3] = m0, m1, m2, m3
	}
	if i < len(seeds) {
		kminScalar(seeds[i:], xs, mins[i:])
	}
}

// onePermUnrolled unrolls the element loop four-wide. Minima commute,
// so the reordering relative to the scalar loop cannot change any bin's
// final value — the differential tests still pin it bit-identical.
func onePermUnrolled(seed uint64, xs []uint32, mins []uint64) {
	for i := range mins {
		mins[i] = emptyBin
	}
	k := len(mins)
	j := 0
	for ; j+4 <= len(xs); j += 4 {
		h0 := mix64(uint64(xs[j]) ^ seed)
		h1 := mix64(uint64(xs[j+1]) ^ seed)
		h2 := mix64(uint64(xs[j+2]) ^ seed)
		h3 := mix64(uint64(xs[j+3]) ^ seed)
		if b := binOf(h0, k); h0 < mins[b] {
			mins[b] = h0
		}
		if b := binOf(h1, k); h1 < mins[b] {
			mins[b] = h1
		}
		if b := binOf(h2, k); h2 < mins[b] {
			mins[b] = h2
		}
		if b := binOf(h3, k); h3 < mins[b] {
			mins[b] = h3
		}
	}
	for ; j < len(xs); j++ {
		h := mix64(uint64(xs[j]) ^ seed)
		if b := binOf(h, k); h < mins[b] {
			mins[b] = h
		}
	}
}

// matchUnrolled keeps four branch-free equality accumulators per pass.
func matchUnrolled(a, b []uint32) int {
	var c0, c1, c2, c3 int
	i := 0
	for ; i+4 <= len(a); i += 4 {
		c0 += eq(a[i], b[i])
		c1 += eq(a[i+1], b[i+1])
		c2 += eq(a[i+2], b[i+2])
		c3 += eq(a[i+3], b[i+3])
	}
	for ; i < len(a); i++ {
		c0 += eq(a[i], b[i])
	}
	return c0 + c1 + c2 + c3
}

// eq is a branch-free equality bit: 1 when x == y, else 0.
func eq(x, y uint32) int {
	return int((uint64(x^y) - 1) >> 63)
}

var (
	scalarKernels = kernelImpl{
		name:    "scalar",
		kmin:    kminScalar,
		onePerm: onePermScalar,
		match:   matchScalar,
	}
	unrolledKernels = kernelImpl{
		name:    "unrolled",
		kmin:    kminUnrolled,
		onePerm: onePermUnrolled,
		match:   matchUnrolled,
	}
)

// kernelImpls is the differential-test registry: every implementation
// here must agree bit-for-bit with scalarKernels on all inputs.
var kernelImpls = []kernelImpl{scalarKernels, unrolledKernels}

// Dispatched kernels, bound once at init. Function variables (rather
// than an interface) keep the call one indirect jump with no boxing.
var (
	kminKernel    func(seeds []uint64, xs []uint32, mins []uint64)
	onePermKernel func(seed uint64, xs []uint32, mins []uint64)
	matchKernel   func(a, b []uint32) int
)

func init() {
	impl := unrolledKernels
	if os.Getenv("SGTREE_SKETCH_SCALAR") != "" {
		impl = scalarKernels
	}
	kminKernel = impl.kmin
	onePermKernel = impl.onePerm
	matchKernel = impl.match
}

// ActiveKernel names the dispatched kernel set ("unrolled" or
// "scalar"), for diagnostics and benchmark labels.
func ActiveKernel() string {
	if os.Getenv("SGTREE_SKETCH_SCALAR") != "" {
		return scalarKernels.name
	}
	return unrolledKernels.name
}

// bandHash mixes one band's rows into a bucket key. The band index is
// folded in so the same row values hash differently across bands.
func bandHash(band int, rows []uint32) uint64 {
	h := mix64(uint64(band)*0x9e3779b97f4a7c15 + 0x53474254) // "SGBT"
	for _, r := range rows {
		h = mix64(h ^ uint64(r))
	}
	return h
}
