package sketch

import (
	"math"
	"math/rand"
	"testing"

	"sgtree/internal/signature"
)

// randomSet draws n distinct positions from [0, universe).
func randomSet(rng *rand.Rand, universe, n int) []uint32 {
	seen := make(map[uint32]bool, n)
	out := make([]uint32, 0, n)
	for len(out) < n {
		x := uint32(rng.Intn(universe))
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// jaccardOf computes the exact Jaccard similarity of two position sets.
func jaccardOf(a, b []uint32) float64 {
	m := make(map[uint32]bool, len(a))
	for _, x := range a {
		m[x] = true
	}
	inter := 0
	for _, x := range b {
		if m[x] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// overlappingSets builds two sets sharing a prefix, giving a spread of
// true similarities.
func overlappingSets(rng *rand.Rand, universe, size, shared int) ([]uint32, []uint32) {
	base := randomSet(rng, universe, size+2*(size-shared))
	a := append([]uint32(nil), base[:shared]...)
	b := append([]uint32(nil), base[:shared]...)
	a = append(a, base[size:size+(size-shared)]...)
	b = append(b, base[size+(size-shared):size+2*(size-shared)]...)
	return a, b
}

func TestParamsValidate(t *testing.T) {
	good := []Params{
		{K: 64},
		{K: 128, Bits: 8, Bands: 32},
		{K: 16, Bits: 32, Bands: 16, Scheme: OnePerm},
		{K: 6, Bits: 1, Bands: 3},
	}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", p, err)
		}
	}
	bad := []Params{
		{},                           // K missing
		{K: -4},                      // negative K
		{K: 64, Bits: 33},            // register too wide
		{K: 64, Bands: 65},           // more bands than registers
		{K: 64, Bands: 7},            // K not a multiple of Bands
		{K: 64, Scheme: Scheme(9)},   // unknown scheme
		{K: 64, Bits: -1, Bands: 16}, // negative width
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", p)
		}
	}
	if got := (Params{K: 64}).Rows(); got != 2 {
		t.Errorf("default Rows = %d, want 2 (Bands defaults to K/2)", got)
	}
}

func TestParseScheme(t *testing.T) {
	for name, want := range map[string]Scheme{"": KMin, "kmin": KMin, "oneperm": OnePerm} {
		got, err := ParseScheme(name)
		if err != nil || got != want {
			t.Errorf("ParseScheme(%q) = %v, %v; want %v, nil", name, got, err, want)
		}
	}
	if _, err := ParseScheme("simhash"); err == nil {
		t.Error("ParseScheme(simhash) = nil error, want error")
	}
}

// TestKernelDifferential pins every registry implementation
// bit-identical to the scalar reference, across sizes that exercise
// the unrolled kernels' main loops and tails.
func TestKernelDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range []int{1, 2, 3, 4, 5, 7, 8, 64, 65, 128} {
		seeds := make([]uint64, k)
		for i := range seeds {
			seeds[i] = rng.Uint64()
		}
		for _, n := range []int{0, 1, 2, 3, 4, 5, 8, 9, 100} {
			xs := make([]uint32, n)
			for i := range xs {
				xs[i] = rng.Uint32()
			}
			want := make([]uint64, k)
			scalarKernels.kmin(seeds, xs, want)
			wantOP := make([]uint64, k)
			scalarKernels.onePerm(seeds[0], xs, wantOP)
			a := make([]uint32, k)
			b := make([]uint32, k)
			for i := range a {
				a[i] = uint32(rng.Intn(4))
				b[i] = uint32(rng.Intn(4))
			}
			wantMatch := scalarKernels.match(a, b)
			for _, impl := range kernelImpls {
				got := make([]uint64, k)
				impl.kmin(seeds, xs, got)
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s kmin k=%d n=%d register %d: %x != %x", impl.name, k, n, i, got[i], want[i])
					}
				}
				impl.onePerm(seeds[0], xs, got)
				for i := range got {
					if got[i] != wantOP[i] {
						t.Fatalf("%s onePerm k=%d n=%d register %d: %x != %x", impl.name, k, n, i, got[i], wantOP[i])
					}
				}
				if m := impl.match(a, b); m != wantMatch {
					t.Fatalf("%s match k=%d: %d != %d", impl.name, k, m, wantMatch)
				}
			}
		}
	}
}

// TestSketchIdentity: a set always sketches identically, and identical
// sets estimate similarity exactly 1 under both schemes.
func TestSketchIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, scheme := range []Scheme{KMin, OnePerm} {
		for _, bits := range []int{1, 8, 16, 32} {
			sk, err := New(Params{K: 64, Bits: bits, Scheme: scheme})
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range []int{0, 1, 5, 40, 200} {
				set := randomSet(rng, 10000, n)
				r1 := make([]uint32, sk.K())
				r2 := make([]uint32, sk.K())
				sk.Sketch(set, r1, nil)
				sk.Sketch(set, r2, nil)
				for i := range r1 {
					if r1[i] != r2[i] {
						t.Fatalf("%v b=%d n=%d: sketch not deterministic at register %d", scheme, bits, n, i)
					}
					if max := uint32(1)<<uint(bits) - 1; bits < 32 && r1[i] > max {
						t.Fatalf("%v b=%d: register %d = %d exceeds %d", scheme, bits, i, r1[i], max)
					}
				}
				if j := sk.Estimate(r1, r2); j != 1 {
					t.Fatalf("%v b=%d n=%d: self-estimate %v, want 1", scheme, bits, n, j)
				}
			}
		}
	}
}

// TestEstimateAccuracy checks the estimator against the exact Jaccard
// similarity across similarity levels. K=1024 at 32-bit registers has
// standard error ≤ 0.016, so a 0.1 tolerance is ~6σ per pair — loose
// enough to be deterministic-in-practice at this fixed seed, tight
// enough to catch any systematic estimator error.
func TestEstimateAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, scheme := range []Scheme{KMin, OnePerm} {
		sk, err := New(Params{K: 1024, Bits: 32, Scheme: scheme})
		if err != nil {
			t.Fatal(err)
		}
		ra := make([]uint32, sk.K())
		rb := make([]uint32, sk.K())
		for _, shared := range []int{0, 10, 25, 40, 50} {
			a, b := overlappingSets(rng, 100000, 50, shared)
			truth := jaccardOf(a, b)
			sk.Sketch(a, ra, nil)
			sk.Sketch(b, rb, nil)
			got := sk.Estimate(ra, rb)
			if math.Abs(got-truth) > 0.1 {
				t.Errorf("%v shared=%d: estimate %.3f vs exact %.3f", scheme, shared, got, truth)
			}
		}
	}
}

// TestBBitCorrection: at 1-bit registers every register matches with
// probability ≥ 1/2 by accident; the corrected estimator must still
// track the exact similarity on disjoint sets (raw match ≈ 0.5 → 0).
func TestBBitCorrection(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sk, err := New(Params{K: 4096, Bits: 1, Bands: 2048})
	if err != nil {
		t.Fatal(err)
	}
	a := randomSet(rng, 1000000, 500)
	b := randomSet(rng, 1000000, 500)
	// Regenerate b until disjoint from a (overwhelmingly already true).
	m := make(map[uint32]bool)
	for _, x := range a {
		m[x] = true
	}
	for i := 0; i < len(b); i++ {
		for m[b[i]] {
			b[i] = uint32(rng.Intn(1000000))
		}
	}
	ra := make([]uint32, sk.K())
	rb := make([]uint32, sk.K())
	sk.Sketch(a, ra, nil)
	sk.Sketch(b, rb, nil)
	if j := sk.Estimate(ra, rb); j > 0.08 {
		t.Errorf("1-bit corrected estimate on disjoint sets = %.3f, want ≈ 0", j)
	}
}

// TestEstimateDistance pins the metric conversion against
// signature.Distance: feeding the exact Jaccard similarity into the
// conversion must reproduce the exact distance for every metric.
func TestEstimateDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const universe = 300
	m := signature.NewDirectMapper(universe)
	for trial := 0; trial < 50; trial++ {
		a, b := overlappingSets(rng, universe, 20, rng.Intn(21))
		sa := signature.FromItems(m, toInts(a))
		sb := signature.FromItems(m, toInts(b))
		j := jaccardOf(a, b)
		for _, metric := range []signature.Metric{signature.Hamming, signature.Jaccard, signature.Dice, signature.Cosine} {
			want := signature.Distance(metric, sa, sb)
			got := EstimateDistance(metric, j, sa.Area(), sb.Area())
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("metric %v: EstimateDistance(exact j) = %v, signature.Distance = %v", metric, got, want)
			}
		}
	}
	// Empty-set conventions.
	for _, metric := range []signature.Metric{signature.Hamming, signature.Jaccard, signature.Dice, signature.Cosine} {
		if d := EstimateDistance(metric, 1, 0, 0); d != 0 {
			t.Errorf("metric %v: both-empty distance %v, want 0", metric, d)
		}
	}
}

func toInts(xs []uint32) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = int(x)
	}
	return out
}

// TestIndexSelfCollision: an indexed set queried by its own sketch is a
// candidate at every probe depth — identical sketches collide in every
// band, which is what makes route-mode self-recall deterministic.
func TestIndexSelfCollision(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, scheme := range []Scheme{KMin, OnePerm} {
		ix, err := NewIndex(Params{K: 32, Bits: 8, Bands: 16, Scheme: scheme})
		if err != nil {
			t.Fatal(err)
		}
		sets := make([][]uint32, 50)
		for i := range sets {
			sets[i] = randomSet(rng, 5000, 1+rng.Intn(30))
			ix.Add(uint32(i), uint32(i%7), len(sets[i]), sets[i])
		}
		var cs CandidateSet
		regs := make([]uint32, 32)
		for i, set := range sets {
			ix.Sketcher().Sketch(set, regs, nil)
			for _, probe := range []int{1, 4, 16} {
				found := false
				for _, r := range ix.Candidates(regs, probe, &cs) {
					if ix.Record(r).TID == uint32(i) {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("%v: set %d not a candidate of its own sketch at probe=%d", scheme, i, probe)
				}
			}
		}
	}
}

// TestCandidatesDedup: a record colliding in several bands appears once.
func TestCandidatesDedup(t *testing.T) {
	ix, err := NewIndex(Params{K: 8, Bits: 4, Bands: 8})
	if err != nil {
		t.Fatal(err)
	}
	set := []uint32{1, 2, 3}
	ix.Add(7, 0, len(set), set)
	regs := make([]uint32, 8)
	ix.Sketcher().Sketch(set, regs, nil)
	var cs CandidateSet
	got := ix.Candidates(regs, 8, &cs)
	if len(got) != 1 {
		t.Fatalf("Candidates returned %d entries for one record colliding in all bands, want 1", len(got))
	}
	// Scratch reuse across queries must not leak previous results.
	got = ix.Candidates(regs, 1, &cs)
	if len(got) != 1 {
		t.Fatalf("Candidates after reuse returned %d entries, want 1", len(got))
	}
}

// TestCandidateLeaves: the leaf-granular fast path returns exactly the
// distinct leaf tokens of the record-granular Candidates result, at
// every probe depth, including when the two calls interleave on one
// shared CandidateSet (the stamp counter is shared between them).
func TestCandidateLeaves(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ix, err := NewIndex(Params{K: 32, Bits: 8, Bands: 16})
	if err != nil {
		t.Fatal(err)
	}
	sets := make([][]uint32, 120)
	for i := range sets {
		sets[i] = randomSet(rng, 2000, 1+rng.Intn(25))
		ix.Add(uint32(i), uint32(i%9), len(sets[i]), sets[i]) // 9 distinct leaves
	}
	var cs CandidateSet
	regs := make([]uint32, 32)
	for qi := 0; qi < 30; qi++ {
		ix.Sketcher().Sketch(sets[qi%len(sets)], regs, nil)
		for _, probe := range []int{1, 3, 16} {
			want := map[uint32]bool{}
			for _, r := range ix.Candidates(regs, probe, &cs) {
				want[ix.Record(r).Leaf] = true
			}
			leaves := ix.CandidateLeaves(regs, probe, &cs)
			got := map[uint32]bool{}
			for _, l := range leaves {
				if got[l] {
					t.Fatalf("probe=%d: leaf %d returned twice", probe, l)
				}
				got[l] = true
			}
			if len(got) != len(want) {
				t.Fatalf("probe=%d: got %d leaves, want %d", probe, len(got), len(want))
			}
			for l := range want {
				if !got[l] {
					t.Fatalf("probe=%d: leaf %d missing from CandidateLeaves", probe, l)
				}
			}
		}
	}
}

// TestBandsForRecall: monotone in the recall target, clamped to the
// band count, and maximal at recall 1.
func TestBandsForRecall(t *testing.T) {
	ix, err := NewIndex(Params{K: 128, Bits: 16, Bands: 64})
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for _, r := range []float64{0.1, 0.5, 0.9, 0.95, 0.99, 0.999} {
		n := ix.BandsForRecall(r, 0.5)
		if n < prev {
			t.Errorf("BandsForRecall(%v) = %d < BandsForRecall(prev) = %d, want monotone", r, n, prev)
		}
		if n < 1 || n > ix.Bands() {
			t.Errorf("BandsForRecall(%v) = %d outside [1,%d]", r, n, ix.Bands())
		}
		prev = n
	}
	if n := ix.BandsForRecall(1, 0.5); n != ix.Bands() {
		t.Errorf("BandsForRecall(1) = %d, want all %d bands", n, ix.Bands())
	}
	// A higher reference similarity needs fewer bands for the same recall.
	if lo, hi := ix.BandsForRecall(0.95, 0.8), ix.BandsForRecall(0.95, 0.3); lo > hi {
		t.Errorf("BandsForRecall at s0=0.8 probes %d > %d at s0=0.3, want fewer", lo, hi)
	}
}

// TestEmptySet: the empty set sketches deterministically and matches
// only other empty sets at similarity 1.
func TestEmptySet(t *testing.T) {
	for _, scheme := range []Scheme{KMin, OnePerm} {
		sk, err := New(Params{K: 16, Bits: 8, Scheme: scheme})
		if err != nil {
			t.Fatal(err)
		}
		empty := make([]uint32, sk.K())
		sk.Sketch(nil, empty, nil)
		other := make([]uint32, sk.K())
		sk.Sketch([]uint32{1, 2, 3, 4, 5}, other, nil)
		if j := sk.Estimate(empty, empty); j != 1 {
			t.Errorf("%v: empty-vs-empty estimate %v, want 1", scheme, j)
		}
		if j := sk.Estimate(empty, other); j > 0.6 {
			t.Errorf("%v: empty-vs-nonempty estimate %v, want small", scheme, j)
		}
	}
}
