package sketch

import (
	"math"
	"testing"
)

// FuzzSketchEquivalence is the sketch tier's differential harness,
// mirroring FuzzKernelEquivalence in internal/bitset: from arbitrary
// bytes it derives two sets and checks
//
//   - every registry kernel (scalar, unrolled) produces bit-identical
//     sketches for both schemes,
//   - the estimator is within [0,1], exactly 1 on identical input, and
//   - the estimate tracks the exact Jaccard oracle within a bound far
//     beyond the estimator's ~9σ tail at K=1024 — loose enough never to
//     fire on honest sampling noise, tight enough to catch a broken
//     hash, densifier or correction term.
func FuzzSketchEquivalence(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{1, 2, 3, 4}, uint8(16))
	f.Add([]byte{}, []byte{0xff}, uint8(1))
	f.Add([]byte{9, 9, 9}, []byte{9, 9, 9}, uint8(32))
	f.Fuzz(func(t *testing.T, rawA, rawB []byte, bits uint8) {
		b := int(bits)%32 + 1
		a := setFromBytes(rawA)
		c := setFromBytes(rawB)
		for _, scheme := range []Scheme{KMin, OnePerm} {
			const k = 1024
			sk, err := New(Params{K: k, Bits: b, Bands: k / 2, Scheme: scheme})
			if err != nil {
				t.Fatal(err)
			}
			// Kernel differential: every impl agrees on the raw minima.
			refA := sketchWith(scalarKernels, sk, a)
			refC := sketchWith(scalarKernels, sk, c)
			for _, impl := range kernelImpls[1:] {
				gotA := sketchWith(impl, sk, a)
				gotC := sketchWith(impl, sk, c)
				for i := range refA {
					if gotA[i] != refA[i] || gotC[i] != refC[i] {
						t.Fatalf("%v/%s: register %d differs from scalar", scheme, impl.name, i)
					}
				}
			}
			// Estimator invariants against the exact oracle.
			j := sk.Estimate(refA, refC)
			if j < 0 || j > 1 {
				t.Fatalf("%v: estimate %v outside [0,1]", scheme, j)
			}
			if self := sk.Estimate(refA, refA); self != 1 {
				t.Fatalf("%v: self-estimate %v, want 1", scheme, self)
			}
			// Statistical bound only at wide registers, where the
			// collision floor is negligible: SE ≤ 0.5/√1024 ≈ 0.016, so
			// 0.15 is ~9σ. For one-permutation sketches the bound
			// additionally requires the union to fill most buckets:
			// rotation densification copies the few occupied buckets
			// across the empty ones, and those copies correlate between
			// the two sketches, biasing the estimate upward for sets
			// much smaller than K (which is why kmin is the default
			// scheme — see Params.Scheme).
			dense := scheme == KMin || len(a)+len(c) >= 2*k
			if b >= 16 && dense {
				truth := jaccardOf(a, c)
				if math.Abs(j-truth) > 0.15 {
					t.Fatalf("%v b=%d: estimate %.3f vs exact %.3f (|Δ| > 0.15)", scheme, b, j, truth)
				}
			}
		}
	})
}

// setFromBytes derives a deterministic distinct-position set from fuzz
// bytes: consecutive byte pairs become positions, duplicates dropped.
func setFromBytes(raw []byte) []uint32 {
	seen := make(map[uint32]bool)
	out := []uint32{}
	for i := 0; i+1 < len(raw); i += 2 {
		x := uint32(raw[i])<<8 | uint32(raw[i+1])
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// sketchWith computes a sketch using one specific kernel registry
// entry, bypassing the dispatched kernels.
func sketchWith(impl kernelImpl, sk *Sketcher, xs []uint32) []uint32 {
	mins := make([]uint64, sk.K())
	if sk.Params().Scheme == KMin {
		impl.kmin(sk.seeds, xs, mins)
	} else {
		impl.onePerm(sk.Params().Seed, xs, mins)
		densify(mins)
	}
	regs := make([]uint32, sk.K())
	for i, m := range mins {
		regs[i] = uint32(m) & sk.mask
	}
	return regs
}
