// Package sgtable implements the signature table of Aggarwal, Wolf & Yu
// (SIGMOD 1999), the baseline index of the paper's evaluation (described in
// its Section 2.2.1). The structure is built from a static dataset in two
// steps: a minimum-spanning-tree-style clustering of the item universe into
// K groups of frequently co-occurring items (the "vertical signatures",
// with a critical-mass rule that freezes groups before they grow too
// popular), followed by hashing every transaction to one of 2^K buckets
// according to which vertical signatures it activates. Nearest-neighbor
// queries scan buckets in ascending order of an optimistic distance bound
// and stop when the bound passes the best distance found.
package sgtable

import (
	"fmt"
	"sort"

	"sgtree/internal/dataset"
)

// clusterItems groups the item universe into vertical signatures.
//
// It follows the description in the papers: every item starts as its own
// cluster; cluster pairs are merged in decreasing order of the co-occurrence
// frequency of their closest item pair (single link — clustering along the
// maximum spanning tree of the co-occurrence graph); a cluster whose total
// support exceeds criticalMass × (total support) is frozen and takes no
// further merges. Merging stops when numGroups clusters remain (frozen ones
// included). Items that never co-occur with anything stay singleton
// clusters and are dropped from the result if there are too many groups;
// dropping items keeps the bounds admissible (an ungrouped item simply
// contributes nothing).
func clusterItems(d *dataset.Dataset, numGroups int, criticalMass float64) [][]int {
	n := d.Universe
	support := make([]int64, n)
	totalSupport := int64(0)
	for _, tx := range d.Tx {
		for _, it := range tx {
			support[it]++
			totalSupport++
		}
	}

	// Pairwise co-occurrence counts. The universe of these workloads is
	// around a thousand items, so a dense triangular matrix is cheap.
	cooc := make(map[int64]int64)
	key := func(a, b int) int64 {
		if a > b {
			a, b = b, a
		}
		return int64(a)*int64(n) + int64(b)
	}
	for _, tx := range d.Tx {
		for i := 0; i < len(tx); i++ {
			for j := i + 1; j < len(tx); j++ {
				cooc[key(tx[i], tx[j])]++
			}
		}
	}

	type edge struct {
		a, b  int
		count int64
	}
	edges := make([]edge, 0, len(cooc))
	for k, c := range cooc {
		edges = append(edges, edge{a: int(k / int64(n)), b: int(k % int64(n)), count: c})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].count != edges[j].count {
			return edges[i].count > edges[j].count
		}
		// Deterministic tie-break.
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})

	// Union-find over items.
	parent := make([]int, n)
	clusterSupport := make([]int64, n)
	frozen := make([]bool, n)
	for i := range parent {
		parent[i] = i
		clusterSupport[i] = support[i]
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}

	// Only items that appear at all participate in clustering.
	liveClusters := 0
	for i := 0; i < n; i++ {
		if support[i] > 0 {
			liveClusters++
		}
	}
	massLimit := int64(criticalMass * float64(totalSupport))

	for _, e := range edges {
		if liveClusters <= numGroups {
			break
		}
		ra, rb := find(e.a), find(e.b)
		if ra == rb || frozen[ra] || frozen[rb] {
			continue
		}
		parent[rb] = ra
		clusterSupport[ra] += clusterSupport[rb]
		liveClusters--
		if massLimit > 0 && clusterSupport[ra] > massLimit {
			// Critical mass: the group is popular enough; freeze it so it
			// does not swallow the universe.
			frozen[ra] = true
		}
	}

	groups := make(map[int][]int)
	for i := 0; i < n; i++ {
		if support[i] == 0 {
			continue
		}
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	out := make([][]int, 0, len(groups))
	for _, g := range groups {
		sort.Ints(g)
		out = append(out, g)
	}
	// Prefer the highest-support groups when more than numGroups remain.
	sort.Slice(out, func(i, j int) bool {
		si, sj := groupSupport(out[i], support), groupSupport(out[j], support)
		if si != sj {
			return si > sj
		}
		return out[i][0] < out[j][0]
	})
	if len(out) > numGroups {
		out = out[:numGroups]
	}
	return out
}

func groupSupport(g []int, support []int64) int64 {
	var s int64
	for _, it := range g {
		s += support[it]
	}
	return s
}

// Config parameterizes a signature table. These are exactly the hardwired
// constants the paper criticizes: they must be chosen before the build and
// the structure cannot adapt afterwards.
type Config struct {
	// NumSignatures is K, the number of vertical signatures; the table has
	// up to 2^K entries. Default 12.
	NumSignatures int
	// ActivationThreshold is θ: a transaction activates a vertical
	// signature when it shares at least θ items with it. Default 2.
	ActivationThreshold int
	// CriticalMass freezes an item cluster once its total support exceeds
	// this fraction of the dataset's total support. Default 0.15.
	CriticalMass float64
	// PageSize is the bucket page size in bytes (default 4096).
	PageSize int
	// BufferPages is the buffer-pool capacity (default 256).
	BufferPages int
	// Compress stores bucket signatures in the sparse encoding instead of
	// dense bitmaps. Off by default to mirror the uncompressed SG-tree
	// configuration the paper's comparison uses.
	Compress bool
}

func (c Config) withDefaults() Config {
	if c.NumSignatures == 0 {
		c.NumSignatures = 12
	}
	if c.ActivationThreshold == 0 {
		c.ActivationThreshold = 2
	}
	if c.CriticalMass == 0 {
		c.CriticalMass = 0.15
	}
	if c.PageSize == 0 {
		c.PageSize = 4096
	}
	if c.BufferPages == 0 {
		c.BufferPages = 256
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.NumSignatures < 1 || c.NumSignatures > 24 {
		return fmt.Errorf("sgtable: NumSignatures %d outside [1,24]", c.NumSignatures)
	}
	if c.ActivationThreshold < 1 {
		return fmt.Errorf("sgtable: ActivationThreshold %d < 1", c.ActivationThreshold)
	}
	if c.CriticalMass < 0 || c.CriticalMass > 1 {
		return fmt.Errorf("sgtable: CriticalMass %v outside [0,1]", c.CriticalMass)
	}
	if c.PageSize < 64 {
		return fmt.Errorf("sgtable: page size %d too small", c.PageSize)
	}
	return nil
}
