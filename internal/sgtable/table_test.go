package sgtable

import (
	"math/rand"
	"testing"

	"sgtree/internal/dataset"
	"sgtree/internal/gen"
	"sgtree/internal/scan"
	"sgtree/internal/signature"
)

func questData(t *testing.T, n int, seed int64) (*dataset.Dataset, *gen.Quest) {
	t.Helper()
	q, err := gen.NewQuest(gen.QuestConfig{
		NumTransactions: n, AvgSize: 8, AvgItemsetSize: 4, NumItems: 200, NumItemsets: 50, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return q.Generate(), q
}

func testConfig() Config {
	return Config{NumSignatures: 8, ActivationThreshold: 2, PageSize: 512, BufferPages: 64}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{NumSignatures: -1},
		{NumSignatures: 30},
		{ActivationThreshold: -2},
		{CriticalMass: 1.5},
		{PageSize: 32},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestClusterItemsShape(t *testing.T) {
	d, _ := questData(t, 1000, 1)
	groups := clusterItems(d, 8, 0.15)
	if len(groups) == 0 || len(groups) > 8 {
		t.Fatalf("got %d groups", len(groups))
	}
	seen := map[int]bool{}
	for _, g := range groups {
		if len(g) == 0 {
			t.Fatal("empty group")
		}
		for i, it := range g {
			if it < 0 || it >= d.Universe {
				t.Fatalf("item %d out of universe", it)
			}
			if seen[it] {
				t.Fatalf("item %d in two groups", it)
			}
			seen[it] = true
			if i > 0 && g[i-1] >= it {
				t.Fatal("group not sorted")
			}
		}
	}
}

func TestClusterItemsGroupsCorrelatedItems(t *testing.T) {
	// A dataset of two disjoint blocks: items 0-4 always together, 5-9
	// always together. Clustering must not mix the blocks.
	d := dataset.New(10)
	for i := 0; i < 50; i++ {
		d.Add(0, 1, 2, 3, 4)
		d.Add(5, 6, 7, 8, 9)
	}
	groups := clusterItems(d, 2, 1.0)
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(groups))
	}
	for _, g := range groups {
		low, high := false, false
		for _, it := range g {
			if it < 5 {
				low = true
			} else {
				high = true
			}
		}
		if low && high {
			t.Fatalf("group %v mixes the blocks", g)
		}
	}
}

func TestCriticalMassFreezesPopularClusters(t *testing.T) {
	// One extremely popular pair plus background pairs. With a small
	// critical mass the popular cluster freezes early and the rest still
	// merges, so the popular items cannot swallow everything.
	d := dataset.New(20)
	for i := 0; i < 200; i++ {
		d.Add(0, 1) // dominant pair
	}
	for i := 0; i < 20; i++ {
		d.Add(2, 3, 4)
		d.Add(5, 6, 7)
	}
	groups := clusterItems(d, 3, 0.3)
	for _, g := range groups {
		if len(g) > 3 {
			contains01 := false
			for _, it := range g {
				if it == 0 || it == 1 {
					contains01 = true
				}
			}
			if contains01 {
				t.Fatalf("popular cluster grew past critical mass: %v", g)
			}
		}
	}
}

func TestBuildAndBasicProperties(t *testing.T) {
	d, _ := questData(t, 500, 2)
	tbl, err := Build(d, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 500 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	if tbl.NumBuckets() < 2 {
		t.Errorf("only %d buckets; hashing degenerate", tbl.NumBuckets())
	}
	st := tbl.Stats()
	if st.Count != 500 || st.Buckets != tbl.NumBuckets() || st.Pages < st.Buckets {
		t.Errorf("stats inconsistent: %+v", st)
	}
	if len(st.GroupSizes) == 0 || len(st.GroupSizes) > 8 {
		t.Errorf("group sizes: %v", st.GroupSizes)
	}
}

func TestKNNMatchesScan(t *testing.T) {
	d, q := questData(t, 600, 3)
	tbl, err := Build(d, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	oracle := scan.New(d)
	for qi, query := range q.Queries(30, 77) {
		for _, k := range []int{1, 4, 9} {
			got, stats, err := tbl.KNN(query, k)
			if err != nil {
				t.Fatal(err)
			}
			want, err := oracle.KNN(query, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("query %d k=%d: %d results, want %d", qi, k, len(got), len(want))
			}
			for i := range got {
				if got[i].Dist != want[i].Dist {
					t.Fatalf("query %d k=%d rank %d: dist %v, want %v", qi, k, i, got[i].Dist, want[i].Dist)
				}
			}
			if stats.DataCompared == 0 {
				t.Fatal("no data compared?")
			}
		}
	}
}

func TestKNNPrunes(t *testing.T) {
	d, q := questData(t, 3000, 5)
	tbl, err := Build(d, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	queries := q.Queries(20, 9)
	for _, query := range queries {
		_, stats, err := tbl.KNN(query, 1)
		if err != nil {
			t.Fatal(err)
		}
		total += stats.DataCompared
	}
	avg := float64(total) / float64(len(queries))
	if avg > 0.9*float64(d.Len()) {
		t.Errorf("KNN compares %.0f of %d on average; the bound sort never stops early", avg, d.Len())
	}
}

func TestRangeSearchMatchesScan(t *testing.T) {
	d, _ := questData(t, 400, 7)
	tbl, err := Build(d, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	oracle := scan.New(d)
	q := d.Tx[33]
	for _, eps := range []float64{0, 3, 8} {
		got, _, err := tbl.RangeSearch(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		want, err := oracle.RangeSearch(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("eps=%v: %d results, want %d", eps, len(got), len(want))
		}
		for i := range got {
			if got[i].Dist != want[i].Dist || got[i].TID != want[i].TID {
				t.Fatalf("eps=%v rank %d: %+v vs %+v", eps, i, got[i], want[i])
			}
		}
	}
	if _, _, err := tbl.RangeSearch(q, -2); err == nil {
		t.Error("negative eps accepted")
	}
}

func TestNearestNeighborAndErrors(t *testing.T) {
	d, _ := questData(t, 100, 11)
	tbl, err := Build(d, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	nn, _, err := tbl.NearestNeighbor(d.Tx[0])
	if err != nil {
		t.Fatal(err)
	}
	if nn.Dist != 0 {
		t.Errorf("NN of a data transaction should be at distance 0, got %v", nn.Dist)
	}
	if _, _, err := tbl.KNN(d.Tx[0], 0); err == nil {
		t.Error("k=0 accepted")
	}
	empty, err := Build(dataset.New(10), Config{NumSignatures: 2, PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := empty.NearestNeighbor(dataset.NewTransaction(1)); err == nil {
		t.Error("NN on empty table should error")
	}
}

func TestInsertAfterBuild(t *testing.T) {
	d, q := questData(t, 300, 13)
	tbl, err := Build(d, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Dynamic inserts with drifted data (new itemsets).
	d2, _ := questData(t, 100, 999)
	for i, tx := range d2.Tx {
		if err := tbl.Insert(tx, dataset.TID(d.Len()+i)); err != nil {
			t.Fatal(err)
		}
	}
	if tbl.Len() != 400 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	// Queries remain correct (bounds admissible regardless of drift).
	combined := dataset.New(d.Universe)
	combined.Tx = append(append([]dataset.Transaction{}, d.Tx...), d2.Tx...)
	oracle := scan.New(combined)
	for _, query := range q.Queries(10, 3) {
		got, _, err := tbl.KNN(query, 3)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := oracle.KNN(query, 3)
		for i := range got {
			if got[i].Dist != want[i].Dist {
				t.Fatalf("after drift: rank %d dist %v, want %v", i, got[i].Dist, want[i].Dist)
			}
		}
	}
	if err := tbl.Insert(dataset.Transaction{999}, 0); err == nil {
		t.Error("out-of-universe transaction accepted")
	}
}

func TestBucketChaining(t *testing.T) {
	// Tiny pages force multi-page bucket chains.
	d, _ := questData(t, 400, 17)
	cfg := Config{NumSignatures: 2, ActivationThreshold: 2, PageSize: 64, BufferPages: 16}
	tbl, err := Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := tbl.Stats()
	if st.Pages <= st.Buckets {
		t.Errorf("expected chained pages: %d pages for %d buckets", st.Pages, st.Buckets)
	}
	// All data still reachable.
	oracle := scan.New(d)
	got, _, err := tbl.KNN(d.Tx[5], 2)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := oracle.KNN(d.Tx[5], 2)
	for i := range got {
		if got[i].Dist != want[i].Dist {
			t.Fatalf("chained buckets lost data: %v vs %v", got[i].Dist, want[i].Dist)
		}
	}
}

func TestEntryBoundAdmissible(t *testing.T) {
	// Property: for every transaction t in bucket b, bound(b, q) ≤ d(q, t).
	d, qgen := questData(t, 300, 19)
	tbl, err := Build(d, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	queries := qgen.Queries(20, 31)
	for _, q := range queries {
		qi := tbl.groupIntersections(q)
		qsig := signature.FromItems(tbl.mapper, q)
		for code, ref := range tbl.buckets {
			bound := tbl.entryBound(code, qi)
			var stats QueryStats
			err := tbl.forEachInBucket(ref, &stats, func(sig signature.Signature, tid dataset.TID) {
				if d := qsig.Hamming(sig); d < bound {
					t.Fatalf("bound %d exceeds true distance %d (code %b)", bound, d, code)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestCodeActivation(t *testing.T) {
	d := dataset.New(10)
	d.Add(0, 1, 2) // group A candidates
	d.Add(0, 1, 2)
	d.Add(5, 6) // group B
	d.Add(5, 6)
	cfg := Config{NumSignatures: 2, ActivationThreshold: 2, PageSize: 256}
	tbl, err := Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A transaction sharing ≥2 items with a group activates it.
	groups := tbl.Groups()
	if len(groups) < 1 {
		t.Fatal("no groups")
	}
	g0 := groups[0]
	if len(g0) < 2 {
		t.Skip("clustering produced singleton groups on this tiny input")
	}
	tx := dataset.NewTransaction(g0[0], g0[1])
	if tbl.code(tx)&1 == 0 {
		t.Error("transaction with 2 items of group 0 should activate bit 0")
	}
	if tbl.code(dataset.NewTransaction(g0[0]))&1 != 0 {
		t.Error("one shared item is below the activation threshold")
	}
}

func TestBuildDeterministic(t *testing.T) {
	d, _ := questData(t, 300, 23)
	t1, err := Build(d, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Build(d, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	g1, g2 := t1.Groups(), t2.Groups()
	if len(g1) != len(g2) {
		t.Fatal("group count differs between identical builds")
	}
	for i := range g1 {
		if len(g1[i]) != len(g2[i]) {
			t.Fatal("group contents differ between identical builds")
		}
		for j := range g1[i] {
			if g1[i][j] != g2[i][j] {
				t.Fatal("group contents differ between identical builds")
			}
		}
	}
}

func TestRandomizedSmallUniverse(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	d := dataset.New(30)
	for i := 0; i < 200; i++ {
		sz := 1 + r.Intn(6)
		items := make([]int, sz)
		for j := range items {
			items[j] = r.Intn(30)
		}
		d.Add(items...)
	}
	tbl, err := Build(d, Config{NumSignatures: 4, ActivationThreshold: 1, PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	oracle := scan.New(d)
	for trial := 0; trial < 30; trial++ {
		sz := 1 + r.Intn(6)
		items := make([]int, sz)
		for j := range items {
			items[j] = r.Intn(30)
		}
		q := dataset.NewTransaction(items...)
		got, _, err := tbl.KNN(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := oracle.KNN(q, 3)
		for i := range got {
			if got[i].Dist != want[i].Dist {
				t.Fatalf("trial %d rank %d: %v vs %v", trial, i, got[i].Dist, want[i].Dist)
			}
		}
	}
}
