package sgtable

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"

	"sgtree/internal/dataset"
	"sgtree/internal/signature"
	"sgtree/internal/storage"
)

// Table is a signature table: K vertical signatures clustering the item
// universe, an in-memory directory of up to 2^K entries, and per-entry
// bucket page chains on disk holding the signatures of the transactions
// that activate exactly that combination of vertical signatures. As in the
// original structure, the indexed transactions are stored as bitmap
// signatures (dense by default, matching the uncompressed SG-tree
// configuration the paper evaluates against).
type Table struct {
	mu       sync.Mutex
	cfg      Config
	universe int
	codec    signature.Codec
	mapper   signature.DirectMapper
	groups   [][]int // vertical signatures (sorted item lists)
	itemGrp  []int   // item -> group index, -1 if ungrouped
	pool     *storage.BufferPool
	buckets  map[uint32]*bucketRef
	count    int
}

type bucketRef struct {
	head, tail storage.PageID
	count      int
}

// Neighbor is one similarity-search result.
type Neighbor struct {
	TID  dataset.TID
	Dist float64
}

// QueryStats reports the work of one query, mirroring the tree's metrics.
type QueryStats struct {
	// BucketsVisited counts table entries whose contents were read.
	BucketsVisited int
	// PagesRead counts bucket pages fetched.
	PagesRead int
	// DataCompared counts transactions compared with the query.
	DataCompared int
	// EntriesConsidered counts table entries for which a bound was computed.
	EntriesConsidered int
}

// Build constructs a signature table from a static dataset: it clusters the
// items into vertical signatures (the expensive preprocessing step the
// paper holds against this structure) and hashes every transaction.
func Build(d *dataset.Dataset, cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	t := &Table{
		cfg:      cfg,
		universe: d.Universe,
		codec:    signature.Codec{Length: d.Universe, ForceDense: !cfg.Compress},
		mapper:   signature.NewDirectMapper(d.Universe),
		groups:   clusterItems(d, cfg.NumSignatures, cfg.CriticalMass),
		pool:     storage.NewBufferPool(storage.NewMemPager(cfg.PageSize), cfg.BufferPages),
		buckets:  make(map[uint32]*bucketRef),
	}
	t.itemGrp = make([]int, d.Universe)
	for i := range t.itemGrp {
		t.itemGrp[i] = -1
	}
	for g, items := range t.groups {
		for _, it := range items {
			t.itemGrp[it] = g
		}
	}
	for i, tx := range d.Tx {
		if err := t.Insert(tx, dataset.TID(i)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Groups returns the vertical signatures (shared; do not modify).
func (t *Table) Groups() [][]int { return t.groups }

// Len returns the number of indexed transactions.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// NumBuckets returns the number of non-empty table entries.
func (t *Table) NumBuckets() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buckets)
}

// Pool exposes the buffer pool for I/O accounting.
func (t *Table) Pool() *storage.BufferPool { return t.pool }

// groupIntersections returns |tx ∩ V_i| for every vertical signature.
func (t *Table) groupIntersections(tx dataset.Transaction) []int {
	counts := make([]int, len(t.groups))
	for _, it := range tx {
		if it >= 0 && it < len(t.itemGrp) {
			if g := t.itemGrp[it]; g >= 0 {
				counts[g]++
			}
		}
	}
	return counts
}

// code returns the activation bit vector of a transaction: bit i is set iff
// the transaction shares at least θ items with vertical signature i.
func (t *Table) code(tx dataset.Transaction) uint32 {
	var c uint32
	for g, cnt := range t.groupIntersections(tx) {
		if cnt >= t.cfg.ActivationThreshold {
			c |= 1 << uint(g)
		}
	}
	return c
}

// Insert hashes a transaction into its bucket. The vertical signatures are
// fixed at build time, so inserts are cheap — but data drifting away from
// the original clustering degrades the table, which is exactly the effect
// the paper's dynamic-update experiment (Figure 17) measures.
func (t *Table) Insert(tx dataset.Transaction, tid dataset.TID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := tx.Validate(t.universe); err != nil {
		return fmt.Errorf("sgtable: %w", err)
	}
	if err := t.appendToBucket(t.code(tx), signature.FromItems(t.mapper, tx), tid); err != nil {
		return err
	}
	t.count++
	return nil
}

// Bucket page layout:
//
//	bytes 0..3  next page id (0 = end of chain)
//	bytes 4..5  entry count (uint16)
//	entries: codec-encoded signature followed by a uint32 tid.
const (
	bucketHeaderSize = 6
	bucketNextOff    = 0
	bucketCountOff   = 4
)

func (t *Table) encodeBucketEntry(dst []byte, sig signature.Signature, tid dataset.TID) []byte {
	dst = t.codec.Append(dst, sig)
	var ref [4]byte
	binary.LittleEndian.PutUint32(ref[:], uint32(tid))
	return append(dst, ref[:]...)
}

func (t *Table) decodeBucketEntry(buf []byte) (signature.Signature, dataset.TID, int, error) {
	sig, n, err := t.codec.Decode(buf)
	if err != nil {
		return signature.Signature{}, 0, 0, fmt.Errorf("sgtable: corrupt bucket entry: %w", err)
	}
	if n+4 > len(buf) {
		return signature.Signature{}, 0, 0, fmt.Errorf("sgtable: truncated bucket entry tid")
	}
	tid := dataset.TID(binary.LittleEndian.Uint32(buf[n:]))
	return sig, tid, n + 4, nil
}

// appendToBucket adds the entry to the bucket's tail page, extending the
// chain when full. Caller holds the lock.
func (t *Table) appendToBucket(code uint32, sig signature.Signature, tid dataset.TID) error {
	encoded := t.encodeBucketEntry(nil, sig, tid)
	if bucketHeaderSize+len(encoded) > t.cfg.PageSize {
		return fmt.Errorf("sgtable: signature of %d bits does not fit a %d-byte page", sig.Len(), t.cfg.PageSize)
	}
	ref, ok := t.buckets[code]
	if !ok {
		id, page, err := t.pool.NewPage()
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint16(page[bucketCountOff:], 0)
		t.pool.Unpin(id, true)
		ref = &bucketRef{head: id, tail: id}
		t.buckets[code] = ref
	}
	page, err := t.pool.Get(ref.tail)
	if err != nil {
		return err
	}
	used, cnt := t.bucketPageUsed(page)
	if used+len(encoded) > t.cfg.PageSize {
		// Chain a new tail page.
		t.pool.Unpin(ref.tail, false)
		newID, newPage, err := t.pool.NewPage()
		if err != nil {
			return err
		}
		copy(newPage[bucketHeaderSize:], encoded)
		binary.LittleEndian.PutUint16(newPage[bucketCountOff:], 1)
		t.pool.Unpin(newID, true)
		// Link the old tail to it.
		oldPage, err := t.pool.Get(ref.tail)
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(oldPage[bucketNextOff:], uint32(newID))
		t.pool.Unpin(ref.tail, true)
		ref.tail = newID
	} else {
		copy(page[used:], encoded)
		binary.LittleEndian.PutUint16(page[bucketCountOff:], uint16(cnt+1))
		t.pool.Unpin(ref.tail, true)
	}
	ref.count++
	return nil
}

// bucketPageUsed returns the number of bytes in use and the entry count by
// walking the entries (pages are small; this keeps the format headerless
// beyond the 6 fixed bytes).
func (t *Table) bucketPageUsed(page []byte) (int, int) {
	cnt := int(binary.LittleEndian.Uint16(page[bucketCountOff:]))
	pos := bucketHeaderSize
	for i := 0; i < cnt; i++ {
		_, _, n, err := t.decodeBucketEntry(page[pos:])
		if err != nil {
			break
		}
		pos += n
	}
	return pos, cnt
}

// forEachInBucket streams the stored signatures of a bucket chain.
func (t *Table) forEachInBucket(ref *bucketRef, stats *QueryStats, fn func(sig signature.Signature, tid dataset.TID)) error {
	id := ref.head
	for id != storage.InvalidPage {
		page, err := t.pool.Get(id)
		if err != nil {
			return err
		}
		stats.PagesRead++
		next := storage.PageID(binary.LittleEndian.Uint32(page[bucketNextOff:]))
		cnt := int(binary.LittleEndian.Uint16(page[bucketCountOff:]))
		pos := bucketHeaderSize
		for i := 0; i < cnt; i++ {
			sig, tid, n, err := t.decodeBucketEntry(page[pos:])
			if err != nil {
				t.pool.Unpin(id, false)
				return fmt.Errorf("sgtable: page %d entry %d: %w", id, i, err)
			}
			pos += n
			fn(sig, tid)
		}
		t.pool.Unpin(id, false)
		id = next
	}
	return nil
}

// entryBound returns the optimistic lower bound on the Hamming distance
// between q and any transaction hashed to the bucket with the given code.
// For each vertical signature V_i with q_i = |q ∩ V_i|: a set bit means the
// transaction shares at least θ items with V_i, so its part inside V_i has
// size ≥ θ and the local symmetric difference is at least max(0, θ − q_i);
// a clear bit bounds the shared part by θ−1, giving at least
// max(0, q_i − (θ−1)). The group parts are disjoint, so the contributions
// add up; items outside every group contribute nothing, keeping the bound
// admissible.
func (t *Table) entryBound(code uint32, qi []int) int {
	theta := t.cfg.ActivationThreshold
	bound := 0
	for g := range t.groups {
		q := qi[g]
		if code&(1<<uint(g)) != 0 {
			if theta > q {
				bound += theta - q
			}
		} else {
			if q > theta-1 {
				bound += q - (theta - 1)
			}
		}
	}
	return bound
}

// resultHeap is a bounded max-heap of the k best neighbors.
type resultHeap []Neighbor

func (h resultHeap) Len() int            { return len(h) }
func (h resultHeap) Less(i, j int) bool  { return h[i].Dist > h[j].Dist }
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(Neighbor)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// KNN returns the k nearest transactions to q by Hamming distance: the
// table entries are sorted by their optimistic bound and scanned in that
// order until the next bound cannot improve the k-th best distance.
func (t *Table) KNN(q dataset.Transaction, k int) ([]Neighbor, QueryStats, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var stats QueryStats
	if k < 1 {
		return nil, stats, fmt.Errorf("sgtable: k = %d < 1", k)
	}
	type cand struct {
		code  uint32
		bound int
	}
	qi := t.groupIntersections(q)
	cands := make([]cand, 0, len(t.buckets))
	for code := range t.buckets {
		stats.EntriesConsidered++
		cands = append(cands, cand{code: code, bound: t.entryBound(code, qi)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].bound != cands[j].bound {
			return cands[i].bound < cands[j].bound
		}
		return cands[i].code < cands[j].code
	})
	best := resultHeap{}
	bound := func() float64 {
		if len(best) < k {
			return math.Inf(1)
		}
		return best[0].Dist
	}
	qsig := signature.FromItems(t.mapper, q)
	for _, c := range cands {
		if float64(c.bound) >= bound() {
			break // sorted order: no later bucket can improve the result
		}
		stats.BucketsVisited++
		err := t.forEachInBucket(t.buckets[c.code], &stats, func(sig signature.Signature, tid dataset.TID) {
			stats.DataCompared++
			d := float64(qsig.Hamming(sig))
			if len(best) < k {
				heap.Push(&best, Neighbor{TID: tid, Dist: d})
			} else if d < best[0].Dist {
				best[0] = Neighbor{TID: tid, Dist: d}
				heap.Fix(&best, 0)
			}
		})
		if err != nil {
			return nil, stats, err
		}
	}
	out := append([]Neighbor(nil), best...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].TID < out[j].TID
	})
	return out, stats, nil
}

// NearestNeighbor returns the single nearest transaction.
func (t *Table) NearestNeighbor(q dataset.Transaction) (Neighbor, QueryStats, error) {
	res, stats, err := t.KNN(q, 1)
	if err != nil {
		return Neighbor{}, stats, err
	}
	if len(res) == 0 {
		return Neighbor{}, stats, fmt.Errorf("sgtable: nearest neighbor on an empty table")
	}
	return res[0], stats, nil
}

// RangeSearch returns every transaction within Hamming distance eps of q,
// visiting only buckets whose bound does not exceed eps.
func (t *Table) RangeSearch(q dataset.Transaction, eps float64) ([]Neighbor, QueryStats, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var stats QueryStats
	if eps < 0 {
		return nil, stats, fmt.Errorf("sgtable: negative range %v", eps)
	}
	qi := t.groupIntersections(q)
	qsig := signature.FromItems(t.mapper, q)
	var out []Neighbor
	for code, ref := range t.buckets {
		stats.EntriesConsidered++
		if float64(t.entryBound(code, qi)) > eps {
			continue
		}
		stats.BucketsVisited++
		err := t.forEachInBucket(ref, &stats, func(sig signature.Signature, tid dataset.TID) {
			stats.DataCompared++
			if d := float64(qsig.Hamming(sig)); d <= eps {
				out = append(out, Neighbor{TID: tid, Dist: d})
			}
		})
		if err != nil {
			return nil, stats, err
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].TID < out[j].TID
	})
	return out, stats, nil
}

// Stats describes the table structure.
type TableStats struct {
	Count       int
	Buckets     int
	Pages       int
	GroupSizes  []int
	MaxBucket   int
	AvgPerEntry float64
}

// Stats returns structural statistics.
func (t *Table) Stats() TableStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := TableStats{Count: t.count, Buckets: len(t.buckets)}
	for _, g := range t.groups {
		s.GroupSizes = append(s.GroupSizes, len(g))
	}
	for _, ref := range t.buckets {
		if ref.count > s.MaxBucket {
			s.MaxBucket = ref.count
		}
	}
	if len(t.buckets) > 0 {
		s.AvgPerEntry = float64(t.count) / float64(len(t.buckets))
	}
	s.Pages = t.pool.Pager().NumPages()
	return s
}
