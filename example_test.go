package sgtree_test

import (
	"fmt"
	"log"

	"sgtree"
)

// The basic workflow: create an index over an item universe, insert sets,
// and run a nearest-neighbor query.
func Example() {
	idx, err := sgtree.New(sgtree.Config{Universe: 100})
	if err != nil {
		log.Fatal(err)
	}
	idx.Insert(1, []int{5, 12, 33})
	idx.Insert(2, []int{5, 12, 33, 47})
	idx.Insert(3, []int{70, 71, 72})

	nn, _, err := idx.NearestNeighbor([]int{5, 12, 40})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("set %d at distance %.0f\n", nn.ID, nn.Distance)
	// Output: set 1 at distance 2
}

// Containment queries return every set including all of the given items.
func ExampleIndex_Containing() {
	idx, _ := sgtree.New(sgtree.Config{Universe: 50})
	idx.Insert(10, []int{1, 2, 3})
	idx.Insert(11, []int{1, 2})
	idx.Insert(12, []int{2, 3})

	ids, _, _ := idx.Containing([]int{1, 2})
	fmt.Println(len(ids), "sets contain {1,2}")
	// Output: 2 sets contain {1,2}
}

// RangeSearch returns everything within a distance threshold, sorted by
// distance.
func ExampleIndex_RangeSearch() {
	idx, _ := sgtree.New(sgtree.Config{Universe: 50})
	idx.Insert(1, []int{1, 2, 3})
	idx.Insert(2, []int{1, 2, 4})
	idx.Insert(3, []int{40, 41, 42})

	within, _, _ := idx.RangeSearch([]int{1, 2, 3}, 2)
	for _, m := range within {
		fmt.Printf("set %d at distance %.0f\n", m.ID, m.Distance)
	}
	// Output:
	// set 1 at distance 0
	// set 2 at distance 2
}

// Neighbors streams results in non-decreasing distance order; stop whenever
// you have seen enough — no k needs to be chosen up front.
func ExampleIndex_Neighbors() {
	idx, _ := sgtree.New(sgtree.Config{Universe: 50})
	idx.Insert(1, []int{1, 2, 3})
	idx.Insert(2, []int{1, 2, 4})
	idx.Insert(3, []int{1, 9, 10})

	it, _ := idx.Neighbors([]int{1, 2, 3})
	for {
		m, ok, err := it.Next()
		if err != nil || !ok || m.Distance > 2 {
			break
		}
		fmt.Printf("set %d at distance %.0f\n", m.ID, m.Distance)
	}
	// Output:
	// set 1 at distance 0
	// set 2 at distance 2
}

// A categorical index stores one value per attribute and searches by the
// number of disagreeing attributes.
func ExampleNewCategorical() {
	// Three attributes with domain sizes 3, 4 and 2.
	ci, err := sgtree.NewCategorical([]int{3, 4, 2}, sgtree.Config{})
	if err != nil {
		log.Fatal(err)
	}
	ci.Insert(1, []int{0, 0, 0})
	ci.Insert(2, []int{0, 0, 1})
	ci.Insert(3, []int{2, 3, 1})

	res, _, _ := ci.KNN([]int{0, 0, 0}, 2)
	for _, m := range res {
		fmt.Printf("tuple %d differs on %.0f attribute(s)\n", m.ID, m.Distance/2)
	}
	// Output:
	// tuple 1 differs on 0 attribute(s)
	// tuple 2 differs on 1 attribute(s)
}

// Bulk loading builds the index from scratch much faster than repeated
// inserts, using gray-code ordering for well-clustered leaves.
func ExampleIndex_BulkLoad() {
	idx, _ := sgtree.New(sgtree.Config{Universe: 1000, Compress: true})
	items := make([]sgtree.Item, 1000)
	for i := range items {
		items[i] = sgtree.Item{ID: uint32(i), Items: []int{i % 1000, (i * 7) % 1000}}
	}
	if err := idx.BulkLoad(items); err != nil {
		log.Fatal(err)
	}
	fmt.Println(idx.Len(), "sets indexed")
	// Output: 1000 sets indexed
}

// SimilarityJoin finds all pairs within a distance threshold across two
// indexes (or within one index when joined with itself).
func ExampleIndex_SimilarityJoin() {
	idx, _ := sgtree.New(sgtree.Config{Universe: 50})
	idx.Insert(1, []int{1, 2, 3})
	idx.Insert(2, []int{1, 2, 4})
	idx.Insert(3, []int{40, 41, 42})

	pairs, _, _ := idx.SimilarityJoin(idx, 2)
	for _, p := range pairs {
		fmt.Printf("%d ~ %d at distance %.0f\n", p.Left, p.Right, p.Distance)
	}
	// Output: 1 ~ 2 at distance 2
}
