package sgtree

// This file holds one testing.B benchmark per table and figure of the
// paper's evaluation (Section 5), one per ablation study from DESIGN.md,
// and micro-benchmarks of the public API. The experiment benchmarks run
// the same harness as cmd/sgbench at a reduced scale so `go test -bench=.`
// terminates in minutes; set SGT_SCALE=full (or a number) to change it,
// and run with -v to see the regenerated result tables.

import (
	"math/rand"
	"os"
	"sort"
	"testing"

	"sgtree/internal/harness"
)

// benchScale is deliberately smaller than the harness default: fourteen
// experiments run back to back under -bench.
func benchScale() harness.Scale {
	if os.Getenv("SGT_SCALE") != "" {
		return harness.DefaultScale()
	}
	return harness.Scale{D: 5000, Queries: 20}
}

func runExperimentBench(b *testing.B, id string) {
	b.Helper()
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		tables, err := harness.Experiments[id](scale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, t := range tables {
				b.Logf("\n%s", t)
			}
		}
	}
}

func runAblationBench(b *testing.B, id string) {
	b.Helper()
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		t, err := harness.Ablations[id](scale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", t)
		}
	}
}

// --- paper artifacts ---

func BenchmarkTable1SplitPolicies(b *testing.B) { runExperimentBench(b, "table1") }
func BenchmarkFig5VaryT(b *testing.B)           { runExperimentBench(b, "fig5") }
func BenchmarkFig6VaryTIO(b *testing.B)         { runExperimentBench(b, "fig6") }
func BenchmarkFig7VaryI(b *testing.B)           { runExperimentBench(b, "fig7") }
func BenchmarkFig8VaryIIO(b *testing.B)         { runExperimentBench(b, "fig8") }
func BenchmarkFig9FixedRatio(b *testing.B)      { runExperimentBench(b, "fig9") }
func BenchmarkFig10FixedRatioIO(b *testing.B)   { runExperimentBench(b, "fig10") }
func BenchmarkFig11VaryD(b *testing.B)          { runExperimentBench(b, "fig11") }
func BenchmarkFig12DistanceRanges(b *testing.B) { runExperimentBench(b, "fig12") }
func BenchmarkFig13KNNSynthetic(b *testing.B)   { runExperimentBench(b, "fig13") }
func BenchmarkFig14KNNCensus(b *testing.B)      { runExperimentBench(b, "fig14") }
func BenchmarkFig15RangeSynthetic(b *testing.B) { runExperimentBench(b, "fig15") }
func BenchmarkFig16RangeCensus(b *testing.B)    { runExperimentBench(b, "fig16") }
func BenchmarkFig17DynamicUpdates(b *testing.B) { runExperimentBench(b, "fig17") }

// --- ablations (design decisions called out in DESIGN.md) ---

func BenchmarkAblationChooseSubtree(b *testing.B)         { runAblationBench(b, "choose") }
func BenchmarkAblationCompression(b *testing.B)           { runAblationBench(b, "compress") }
func BenchmarkAblationBestFirstVsDepthFirst(b *testing.B) { runAblationBench(b, "search") }
func BenchmarkAblationBulkLoad(b *testing.B)              { runAblationBench(b, "bulkload") }
func BenchmarkAblationBufferSize(b *testing.B)            { runAblationBench(b, "buffer") }
func BenchmarkAblationCardStats(b *testing.B)             { runAblationBench(b, "cardstats") }
func BenchmarkAblationLargeUniverse(b *testing.B)         { runAblationBench(b, "universe") }
func BenchmarkAblationForcedReinsert(b *testing.B)        { runAblationBench(b, "reinsert") }

// --- public-API micro-benchmarks ---

func randomSets(n, universe int, seed int64) [][]int {
	r := rand.New(rand.NewSource(seed))
	out := make([][]int, n)
	for i := range out {
		base := (i % 64) * (universe / 64)
		set := map[int]struct{}{}
		for len(set) < 4+r.Intn(8) {
			if r.Float64() < 0.7 {
				set[base+r.Intn(universe/64)] = struct{}{}
			} else {
				set[r.Intn(universe)] = struct{}{}
			}
		}
		items := make([]int, 0, len(set))
		for it := range set {
			items = append(items, it)
		}
		sort.Ints(items)
		out[i] = items
	}
	return out
}

func benchIndex(b *testing.B, n int) (*Index, [][]int) {
	b.Helper()
	sets := randomSets(n, 1024, 1)
	ix, err := New(Config{Universe: 1024, Compress: true})
	if err != nil {
		b.Fatal(err)
	}
	items := make([]Item, len(sets))
	for i, s := range sets {
		items[i] = Item{ID: uint32(i), Items: s}
	}
	if err := ix.BulkLoad(items); err != nil {
		b.Fatal(err)
	}
	return ix, sets
}

func BenchmarkAPIInsert(b *testing.B) {
	sets := randomSets(b.N, 1024, 2)
	ix, err := New(Config{Universe: 1024, Compress: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ix.Insert(uint32(i), sets[i]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAPIBulkLoad10K(b *testing.B) {
	sets := randomSets(10_000, 1024, 3)
	items := make([]Item, len(sets))
	for i, s := range sets {
		items[i] = Item{ID: uint32(i), Items: s}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix, err := New(Config{Universe: 1024, Compress: true})
		if err != nil {
			b.Fatal(err)
		}
		if err := ix.BulkLoad(items); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAPIKNN10(b *testing.B) {
	ix, sets := benchIndex(b, 20_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.KNN(sets[i%len(sets)], 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAPIRangeSearch(b *testing.B) {
	ix, sets := benchIndex(b, 20_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.RangeSearch(sets[i%len(sets)], 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAPIContaining(b *testing.B) {
	ix, sets := benchIndex(b, 20_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sets[i%len(sets)]
		if _, _, err := ix.Containing(s[:2]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAPIKNNParallel(b *testing.B) {
	ix, sets := benchIndex(b, 20_000)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, _, err := ix.KNN(sets[i%len(sets)], 10); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

func BenchmarkAPINNJoin(b *testing.B) {
	a, _ := benchIndex(b, 2000)
	other, _ := benchIndex(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := a.NNJoin(other, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAPIDelete(b *testing.B) {
	sets := randomSets(b.N, 1024, 4)
	ix, err := New(Config{Universe: 1024, Compress: true})
	if err != nil {
		b.Fatal(err)
	}
	for i, s := range sets {
		if err := ix.Insert(uint32(i), s); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		found, err := ix.Delete(uint32(i), sets[i])
		if err != nil || !found {
			b.Fatalf("delete %d: %v %v", i, found, err)
		}
	}
}
